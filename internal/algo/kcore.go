package algo

import (
	"tufast/internal/mem"
	"tufast/internal/sched"
	"tufast/internal/worklist"
)

// KCoreResult carries the core number of every vertex (the largest k such
// that the vertex survives in the k-core).
type KCoreResult struct {
	Core []uint64
	// MaxCore is the degeneracy of the graph.
	MaxCore uint64
}

// KCore computes core numbers with asynchronous peeling: every vertex
// keeps a current bound (initially its degree); a vertex transaction
// recomputes its h-index-style bound from its neighbors' bounds and, on
// decrease, re-activates the neighbors that may be affected. This is the
// textbook distributed k-core of Montresor et al., expressed naturally
// over TuFast's transactional reads of neighbor state. Run on an
// undirected graph.
func KCore(r *Runtime) (*KCoreResult, error) {
	g := r.G
	n := g.NumVertices()
	bound := r.NewVertexArray(0)
	for v := uint32(0); int(v) < n; v++ {
		r.Sp.Store(bound+mem.Addr(v), uint64(g.Degree(v)))
	}

	q := worklist.NewQueue(r.Threads)
	queued := worklist.NewBitset(n)
	for v := uint32(0); int(v) < n; v++ {
		queued.TestAndSet(v)
		q.Push(v)
	}

	err := r.ForEachQueued(DedupFIFO{Q: q, Queued: queued}, func(tx sched.Tx, v uint32, emit func(uint32, uint64)) error {
		queued.Clear(v)
		cur := tx.Read(v, bound+mem.Addr(v))
		if cur == 0 {
			return nil
		}
		// h-index of neighbor bounds, capped at cur: the largest h such
		// that at least h neighbors have bound >= h.
		counts := make([]uint32, cur+1)
		for _, u := range g.Neighbors(v) {
			bu := tx.Read(u, bound+mem.Addr(u))
			if bu > cur {
				bu = cur
			}
			counts[bu]++
		}
		var h, seen uint64
		for h = cur; h > 0; h-- {
			seen += uint64(counts[h])
			if seen >= h {
				break
			}
		}
		if h < cur {
			tx.Write(v, bound+mem.Addr(v), h)
			for _, u := range g.Neighbors(v) {
				// A neighbor whose bound exceeds ours may now shrink; the
				// DedupFIFO's flush-time bitset dedupes re-activations (a
				// hub would otherwise be enqueued once per shrinking
				// neighbor).
				if tx.Read(u, bound+mem.Addr(u)) > h {
					emit(u, 0)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	core := r.ReadArray(bound)
	res := &KCoreResult{Core: core}
	for _, c := range core {
		if c > res.MaxCore {
			res.MaxCore = c
		}
	}
	return res, nil
}

// SeqKCore is the reference peeling implementation (bucket queue).
func SeqKCore(gr interface {
	NumVertices() int
	Degree(uint32) int
	Neighbors(uint32) []uint32
}) []uint64 {
	n := gr.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = gr.Degree(uint32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]uint32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], uint32(v))
	}
	core := make([]uint64, n)
	removed := make([]bool, n)
	cur := make([]int, n)
	copy(cur, deg)
	for k := 0; k <= maxDeg; k++ {
		for i := 0; i < len(buckets[k]); i++ {
			v := buckets[k][i]
			if removed[v] || cur[v] > k {
				continue
			}
			removed[v] = true
			core[v] = uint64(k)
			for _, u := range gr.Neighbors(v) {
				if !removed[u] && cur[u] > k {
					cur[u]--
					if cur[u] <= k {
						buckets[k] = append(buckets[k], u)
					} else {
						buckets[cur[u]] = append(buckets[cur[u]], u)
					}
				}
			}
		}
	}
	return core
}
