package algo

import (
	"tufast/internal/mem"
	"tufast/internal/sched"
)

// MIS vertex states.
const (
	misUnknown = 0
	misIn      = 1
	misOut     = 2
)

// MISResult carries the in-set flags and the set size.
type MISResult struct {
	InSet []bool
	Size  int
}

// MIS computes a maximal independent set with the greedy transactional
// formulation: each vertex joins unless a neighbor already joined, and
// marks itself out otherwise once some neighbor is in. Serializability
// makes the parallel execution equivalent to *some* sequential greedy
// order, which is exactly what maximal independent set needs ("MIS jobs
// need to know whether their neighbors are chosen or not", §VI-A). Run
// on an undirected (symmetrized) graph.
func MIS(r *Runtime) (*MISResult, error) {
	g := r.G
	state := r.NewVertexArray(misUnknown)

	err := r.ForEachVertex(func(tx sched.Tx, v uint32) error {
		if tx.Read(v, state+mem.Addr(v)) != misUnknown {
			return nil
		}
		for _, u := range g.Neighbors(v) {
			if tx.Read(u, state+mem.Addr(u)) == misIn {
				tx.Write(v, state+mem.Addr(v), misOut)
				return nil
			}
		}
		tx.Write(v, state+mem.Addr(v), misIn)
		return nil
	})
	if err != nil {
		return nil, err
	}
	st := r.ReadArray(state)
	res := &MISResult{InSet: make([]bool, len(st))}
	for v, s := range st {
		if s == misIn {
			res.InSet[v] = true
			res.Size++
		}
	}
	return res, nil
}

// MatchingResult carries the partner array (None = unmatched) and the
// matched-pair count.
type MatchingResult struct {
	Match []uint64
	Pairs int
}

// MaximalMatching is the paper's running example (Figure 1): greedily
// pair each unmatched vertex with its first unmatched neighbor, relying
// on the TM for atomicity of the two writes. Run on an undirected graph.
func MaximalMatching(r *Runtime) (*MatchingResult, error) {
	g := r.G
	match := r.NewVertexArray(None)

	err := r.ForEachVertex(func(tx sched.Tx, v uint32) error {
		if tx.Read(v, match+mem.Addr(v)) != None {
			return nil
		}
		for _, u := range g.Neighbors(v) {
			if u == v {
				continue
			}
			if tx.Read(u, match+mem.Addr(u)) == None {
				tx.Write(v, match+mem.Addr(v), uint64(u))
				tx.Write(u, match+mem.Addr(u), uint64(v))
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	m := r.ReadArray(match)
	pairs := 0
	for v, p := range m {
		if p != None && uint64(v) < p {
			pairs++
		}
	}
	return &MatchingResult{Match: m, Pairs: pairs}, nil
}
