package algo

import "sync/atomic"

// atomicCounter is a tiny convenience wrapper used for progress metrics.
type atomicCounter struct{ n atomic.Uint64 }

func (c *atomicCounter) inc()         { c.n.Add(1) }
func (c *atomicCounter) add(d uint64) { c.n.Add(d) }
func (c *atomicCounter) get() uint64  { return c.n.Load() }
