package algo

import (
	"math"
	"testing"

	"tufast/internal/core"
	"tufast/internal/deadlock"
	"tufast/internal/graph"
	"tufast/internal/graph/gen"
	"tufast/internal/mem"
	"tufast/internal/sched"
	"tufast/internal/vlock"
)

// schedFactories builds every scheduler over a fresh space, so the whole
// application suite is exercised against the full §VI-B comparison set.
func schedFactories(n int) map[string]func(sp *mem.Space) sched.Scheduler {
	return map[string]func(sp *mem.Space) sched.Scheduler{
		"tufast": func(sp *mem.Space) sched.Scheduler {
			return core.New(sp, n, core.Config{})
		},
		"tufast-static": func(sp *mem.Space) sched.Scheduler {
			return core.New(sp, n, core.Config{AdaptivePeriod: false, PeriodInit: 500})
		},
		"2pl-detect": func(sp *mem.Space) sched.Scheduler {
			det := deadlock.NewDetector(64)
			return sched.NewTPL(sp, vlock.NewTable(n), det, deadlock.Detect)
		},
		"2pl-nowait": func(sp *mem.Space) sched.Scheduler {
			return sched.NewTPL(sp, vlock.NewTable(n), nil, deadlock.NoWait)
		},
		"occ": func(sp *mem.Space) sched.Scheduler {
			return sched.NewOCC(sp, vlock.NewTable(n))
		},
		"to": func(sp *mem.Space) sched.Scheduler {
			return sched.NewTO(sp, vlock.NewTable(n), n)
		},
		"stm": func(sp *mem.Space) sched.Scheduler {
			return sched.NewSTM(sp)
		},
		"htm-only": func(sp *mem.Space) sched.Scheduler {
			return sched.NewHTMOnly(sp, 8)
		},
		"hsync": func(sp *mem.Space) sched.Scheduler {
			return sched.NewHSync(sp, 8)
		},
		"hto": func(sp *mem.Space) sched.Scheduler {
			return sched.NewHTO(sp, vlock.NewTable(n), n, 500)
		},
	}
}

func testGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g := gen.PowerLaw(3_000, 24_000, 2.1, 99)
	// Symmetrize for the undirected algorithms; directed ones work too.
	edges := make([]graph.Edge, 0, g.NumEdges())
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			edges = append(edges, graph.Edge{U: v, V: u})
		}
	}
	return graph.MustBuild(g.NumVertices(), edges, graph.BuildOptions{Symmetrize: true})
}

func newRuntime(g *graph.CSR, mk func(sp *mem.Space) sched.Scheduler) *Runtime {
	sp := mem.NewSpace(SpaceWordsFor(g.NumVertices()))
	return NewRuntime(g, sp, mk(sp), 8)
}

func TestAllSchedulersAllAlgorithms(t *testing.T) {
	g := testGraph(t)
	wantBFS := SeqBFS(g, 0)
	wantWCC := SeqWCC(g)
	wantTri := SeqTriangles(g)
	wantSSSP := SeqSSSP(g, 0)
	wantPR := SeqPageRank(g, 0.85, 1e-7)

	for name, mk := range schedFactories(g.NumVertices()) {
		t.Run(name, func(t *testing.T) {
			t.Run("bfs", func(t *testing.T) {
				r := newRuntime(g, mk)
				res, err := BFS(r, 0)
				if err != nil {
					t.Fatal(err)
				}
				for v := range wantBFS {
					if res.Level[v] != wantBFS[v] {
						t.Fatalf("level[%d]=%d want %d", v, res.Level[v], wantBFS[v])
					}
				}
			})
			t.Run("wcc", func(t *testing.T) {
				r := newRuntime(g, mk)
				res, err := WCC(r)
				if err != nil {
					t.Fatal(err)
				}
				for v := range wantWCC {
					if res.Component[v] != wantWCC[v] {
						t.Fatalf("comp[%d]=%d want %d", v, res.Component[v], wantWCC[v])
					}
				}
			})
			t.Run("triangles", func(t *testing.T) {
				r := newRuntime(g, mk)
				res, err := Triangles(r)
				if err != nil {
					t.Fatal(err)
				}
				if res.Triangles != wantTri {
					t.Fatalf("triangles=%d want %d", res.Triangles, wantTri)
				}
			})
			t.Run("bellman-ford", func(t *testing.T) {
				r := newRuntime(g, mk)
				res, err := BellmanFord(r, 0)
				if err != nil {
					t.Fatal(err)
				}
				for v := range wantSSSP {
					if res.Dist[v] != wantSSSP[v] {
						t.Fatalf("dist[%d]=%d want %d", v, res.Dist[v], wantSSSP[v])
					}
				}
			})
			t.Run("spfa", func(t *testing.T) {
				r := newRuntime(g, mk)
				res, err := SPFA(r, 0)
				if err != nil {
					t.Fatal(err)
				}
				for v := range wantSSSP {
					if res.Dist[v] != wantSSSP[v] {
						t.Fatalf("dist[%d]=%d want %d", v, res.Dist[v], wantSSSP[v])
					}
				}
			})
			t.Run("pagerank", func(t *testing.T) {
				r := newRuntime(g, mk)
				res, err := PageRank(r, 0.85, 1e-7)
				if err != nil {
					t.Fatal(err)
				}
				var l1 float64
				for v := range wantPR {
					l1 += math.Abs(res.Rank[v] - wantPR[v])
				}
				if l1/float64(g.NumVertices()) > 1e-4 {
					t.Fatalf("pagerank mean L1 deviation %g too large", l1/float64(g.NumVertices()))
				}
			})
			t.Run("mis", func(t *testing.T) {
				r := newRuntime(g, mk)
				res, err := MIS(r)
				if err != nil {
					t.Fatal(err)
				}
				if err := VerifyMIS(g, res.InSet); err != nil {
					t.Fatal(err)
				}
			})
			t.Run("matching", func(t *testing.T) {
				r := newRuntime(g, mk)
				res, err := MaximalMatching(r)
				if err != nil {
					t.Fatal(err)
				}
				if err := VerifyMatching(g, res.Match); err != nil {
					t.Fatal(err)
				}
			})
		})
	}
}
