package algo

import (
	"tufast/internal/graph"
	"tufast/internal/mem"
	"tufast/internal/sched"
	"tufast/internal/worklist"
)

// MaxEdgeWeight bounds the deterministic random edge weights ("we
// generate the edge weight randomly", §VI-A).
const MaxEdgeWeight = 100

// SSSPResult carries the distances (None = unreachable) and the relax
// transaction count.
type SSSPResult struct {
	Dist    []uint64
	Relaxed uint64
}

// BellmanFord computes single-source shortest paths with the paper's
// Figure 3 algorithm driven by a FIFO queue (the queue-based Bellman-Ford
// variant).
func BellmanFord(r *Runtime, source uint32) (*SSSPResult, error) {
	q := worklist.NewQueue(r.Threads)
	q.Push(source)
	return sssp(r, source, FIFOSource{q})
}

// SPFA computes single-source shortest paths with the same relaxation
// transaction but a priority queue ordered by tentative distance — the
// paper's point is that switching algorithms is literally swapping the
// queue (Figure 3: "switch between two algorithms by switching between a
// FIFO queue and a priority queue").
func SPFA(r *Runtime, source uint32) (*SSSPResult, error) {
	pq := worklist.NewPQ(r.Threads)
	pq.Push(source, 0)
	return sssp(r, source, PQSource{pq})
}

func sssp(r *Runtime, source uint32, src Source) (*SSSPResult, error) {
	r.checkVertex(source)
	dist := r.NewVertexArray(None)
	r.Sp.Store(dist+mem.Addr(source), 0)

	var relaxed atomicCounter
	err := r.ForEachQueued(src, func(tx sched.Tx, v uint32, emit func(uint32, uint64)) error {
		relaxed.inc()
		dv := tx.Read(v, dist+mem.Addr(v))
		if dv == None {
			return nil
		}
		for _, u := range r.G.Neighbors(v) {
			w := uint64(graph.WeightOf(v, u, MaxEdgeWeight))
			du := tx.Read(u, dist+mem.Addr(u))
			if dv+w < du {
				tx.Write(u, dist+mem.Addr(u), dv+w)
				emit(u, dv+w)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SSSPResult{Dist: r.ReadArray(dist), Relaxed: relaxed.get()}, nil
}
