// Package algo implements the paper's §VI-A application suite — PageRank,
// BFS, weakly connected components, triangle counting, Bellman-Ford/SPFA
// shortest paths, maximal independent set, and greedy maximal matching —
// once, against the sched.Scheduler interface, so identical user code runs
// on TuFast and on every baseline scheduler the paper compares.
package algo

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tufast/internal/graph"
	"tufast/internal/mem"
	"tufast/internal/sched"
	"tufast/internal/worklist"
)

// Runtime binds a graph, a shared memory space and a scheduler into the
// execution environment the algorithms run in.
type Runtime struct {
	G       *graph.CSR
	Sp      *mem.Space
	S       sched.Scheduler
	Threads int

	wmu     sync.Mutex
	free    []sched.Worker
	created int
}

// NewRuntime creates a Runtime; threads <= 0 means GOMAXPROCS. The space
// must be large enough for the algorithm's property arrays (SpaceWordsFor
// sizes it).
func NewRuntime(g *graph.CSR, sp *mem.Space, s sched.Scheduler, threads int) *Runtime {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &Runtime{G: g, Sp: sp, S: s, Threads: threads}
}

// SpaceWordsFor returns a space size (in words) ample for any algorithm
// in this package on a graph with n vertices.
func SpaceWordsFor(n int) int { return 24*(n+8) + 4096 }

// NewVertexArray allocates one word per vertex initialized to init and
// returns the base address.
func (r *Runtime) NewVertexArray(init uint64) mem.Addr {
	n := r.G.NumVertices()
	base := r.Sp.AllocLineAligned(n)
	if init != 0 {
		for i := 0; i < n; i++ {
			r.Sp.Store(base+mem.Addr(i), init)
		}
	}
	return base
}

// worker leases a per-goroutine scheduler context (ids are stable per
// worker — see tufast.System.Worker for why a sync.Pool would be wrong).
func (r *Runtime) worker() sched.Worker {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	if n := len(r.free); n > 0 {
		w := r.free[n-1]
		r.free = r.free[:n-1]
		return w
	}
	id := r.created
	r.created++
	return r.S.Worker(id)
}

func (r *Runtime) release(w sched.Worker) {
	r.wmu.Lock()
	r.free = append(r.free, w)
	r.wmu.Unlock()
}

// ForEachVertex runs fn for every vertex as its own transaction with the
// degree as the size hint (parallel_for + BEGIN(degree[v])).
func (r *Runtime) ForEachVertex(fn func(tx sched.Tx, v uint32) error) error {
	n := r.G.NumVertices()
	var firstErr atomic.Value
	worklist.Range(n, r.Threads, 256, func(_, lo, hi int) {
		w := r.worker()
		defer r.release(w)
		for v := lo; v < hi; v++ {
			if firstErr.Load() != nil {
				return
			}
			vid := uint32(v)
			hint := r.G.Degree(vid)*2 + 2
			if err := w.Run(hint, func(tx sched.Tx) error { return fn(tx, vid) }); err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
		}
	})
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// Source is a work queue the queued driver drains (worklist.Queue or
// worklist.PQ adapters satisfy it).
type Source interface {
	Pop() (uint32, bool)
	Len() int
}

// FIFOSource adapts worklist.Queue.
type FIFOSource struct{ *worklist.Queue }

// Pop implements Source.
func (s FIFOSource) Pop() (uint32, bool) { return s.Queue.Pop() }

// PQSource adapts worklist.PQ.
type PQSource struct{ *worklist.PQ }

// Pop implements Source.
func (s PQSource) Pop() (uint32, bool) {
	v, _, ok := s.PQ.Pop()
	return v, ok
}

// ForEachQueued drains q with r.Threads workers, one transaction per
// polled vertex. Workers quiesce when the queue stays empty.
func (r *Runtime) ForEachQueued(q Source, fn func(tx sched.Tx, v uint32) error) error {
	var firstErr atomic.Value
	var idle atomic.Int64
	var wg sync.WaitGroup
	threads := r.Threads
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := r.worker()
			defer r.release(w)
			idleSpins := 0
			for {
				if firstErr.Load() != nil {
					return
				}
				v, ok := q.Pop()
				if ok {
					idleSpins = 0
				}
				if !ok {
					n := idle.Add(1)
					if int(n) == threads && q.Len() == 0 {
						return
					}
					idleSpins++
					if idleSpins > 64 {
						time.Sleep(50 * time.Microsecond)
					} else {
						runtime.Gosched()
					}
					idle.Add(-1)
					continue
				}
				hint := r.G.Degree(v)*2 + 2
				if err := w.Run(hint, func(tx sched.Tx) error { return fn(tx, v) }); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// ReadArray copies a vertex array out of the space (after all workers
// finished).
func (r *Runtime) ReadArray(base mem.Addr) []uint64 {
	n := r.G.NumVertices()
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = r.Sp.Load(base + mem.Addr(i))
	}
	return out
}

// ReadFloatArray copies a float64 vertex array out of the space.
func (r *Runtime) ReadFloatArray(base mem.Addr) []float64 {
	n := r.G.NumVertices()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = mem.Float(r.Sp.Load(base + mem.Addr(i)))
	}
	return out
}

// None is the property value meaning "unset".
const None = ^uint64(0)

// checkVertex panics if v is out of range (defensive; algorithms are
// internal callers).
func (r *Runtime) checkVertex(v uint32) {
	if int(v) >= r.G.NumVertices() {
		panic(fmt.Sprintf("algo: vertex %d out of range", v))
	}
}
