// Package algo implements the paper's §VI-A application suite — PageRank,
// BFS, weakly connected components, triangle counting, Bellman-Ford/SPFA
// shortest paths, maximal independent set, and greedy maximal matching —
// once, against the sched.Scheduler interface, so identical user code runs
// on TuFast and on every baseline scheduler the paper compares.
package algo

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tufast/internal/graph"
	"tufast/internal/mem"
	"tufast/internal/sched"
	"tufast/internal/worklist"
)

// Runtime binds a graph, a shared memory space and a scheduler into the
// execution environment the algorithms run in.
type Runtime struct {
	G       *graph.CSR
	Sp      *mem.Space
	S       sched.Scheduler
	Threads int

	// Ctx, when non-nil, cancels every sweep this runtime drives: the
	// drivers check it at chunk boundaries and in their quiesce loops and
	// return its error, so whole algorithms become cancellable without
	// threading a context through each one.
	Ctx context.Context

	wmu     sync.Mutex
	free    []sched.Worker
	created int
}

// ctx returns the runtime's context, defaulting to Background.
func (r *Runtime) ctx() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// run executes one transaction on w, routing through RunCtx when both a
// context and a cancellable worker are available.
func (r *Runtime) run(w sched.Worker, hint int, fn sched.TxFunc) error {
	if r.Ctx != nil {
		if cw, ok := w.(sched.CtxWorker); ok {
			return cw.RunCtx(r.Ctx, hint, fn)
		}
		if err := r.Ctx.Err(); err != nil {
			return err
		}
	}
	return w.Run(hint, fn)
}

// NewRuntime creates a Runtime; threads <= 0 means GOMAXPROCS. The space
// must be large enough for the algorithm's property arrays (SpaceWordsFor
// sizes it).
func NewRuntime(g *graph.CSR, sp *mem.Space, s sched.Scheduler, threads int) *Runtime {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &Runtime{G: g, Sp: sp, S: s, Threads: threads}
}

// SpaceWordsFor returns a space size (in words) ample for any algorithm
// in this package on a graph with n vertices.
func SpaceWordsFor(n int) int { return 24*(n+8) + 4096 }

// NewVertexArray allocates one word per vertex initialized to init and
// returns the base address.
func (r *Runtime) NewVertexArray(init uint64) mem.Addr {
	n := r.G.NumVertices()
	base := r.Sp.AllocLineAligned(n)
	if init != 0 {
		for i := 0; i < n; i++ {
			r.Sp.Store(base+mem.Addr(i), init)
		}
	}
	return base
}

// worker leases a per-goroutine scheduler context (ids are stable per
// worker — see tufast.System.Worker for why a sync.Pool would be wrong).
func (r *Runtime) worker() sched.Worker {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	if n := len(r.free); n > 0 {
		w := r.free[n-1]
		r.free = r.free[:n-1]
		return w
	}
	id := r.created
	r.created++
	return r.S.Worker(id)
}

func (r *Runtime) release(w sched.Worker) {
	r.wmu.Lock()
	r.free = append(r.free, w)
	r.wmu.Unlock()
}

// ForEachVertex runs fn for every vertex as its own transaction with the
// degree as the size hint (parallel_for + BEGIN(degree[v])). When the
// runtime carries a context, cancellation stops the sweep at the next
// chunk or vertex boundary and the context's error is returned.
func (r *Runtime) ForEachVertex(fn func(tx sched.Tx, v uint32) error) error {
	n := r.G.NumVertices()
	ctx := r.ctx()
	var firstErr atomic.Value
	worklist.RangeCtx(ctx, n, r.Threads, 256, func(_, lo, hi int) {
		w := r.worker()
		defer r.release(w)
		for v := lo; v < hi; v++ {
			if firstErr.Load() != nil {
				return
			}
			vid := uint32(v)
			hint := r.G.Degree(vid)*2 + 2
			if err := r.run(w, hint, func(tx sched.Tx) error { return fn(tx, vid) }); err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// Source is a work queue the queued driver drains and refills
// (worklist.Queue or worklist.PQ adapters satisfy it). Push receives the
// emits of a committed transaction; FIFO adapters ignore prio.
type Source interface {
	Pop() (uint32, bool)
	Push(v uint32, prio uint64)
	Len() int
}

// FIFOSource adapts worklist.Queue.
type FIFOSource struct{ *worklist.Queue }

// Pop implements Source.
func (s FIFOSource) Pop() (uint32, bool) { return s.Queue.Pop() }

// Push implements Source (prio ignored).
func (s FIFOSource) Push(v uint32, _ uint64) { s.Queue.Push(v) }

// PQSource adapts worklist.PQ.
type PQSource struct{ *worklist.PQ }

// Pop implements Source.
func (s PQSource) Pop() (uint32, bool) {
	v, _, ok := s.PQ.Pop()
	return v, ok
}

// Push implements Source.
func (s PQSource) Push(v uint32, prio uint64) { s.PQ.Push(v, prio) }

// DedupFIFO is a FIFOSource with a flush-time bitset guard: a vertex
// already marked queued is not re-enqueued. Algorithms that clear the bit
// at the start of processing (kcore, pagerank) use it to keep hubs from
// being enqueued once per activating neighbor. The dedup must live here —
// at the post-commit flush — not inside the transaction: an aborted
// attempt's test-and-set would otherwise leave the bit set with no push
// behind it, permanently suppressing the wakeup.
type DedupFIFO struct {
	Q      *worklist.Queue
	Queued *worklist.Bitset
}

// Pop implements Source.
func (s DedupFIFO) Pop() (uint32, bool) { return s.Q.Pop() }

// Push implements Source (prio ignored).
func (s DedupFIFO) Push(v uint32, _ uint64) {
	if s.Queued.TestAndSet(v) {
		s.Q.Push(v)
	}
}

// Len implements Source.
func (s DedupFIFO) Len() int { return s.Q.Len() }

// pushReq is one buffered emit awaiting its transaction's commit.
type pushReq struct {
	v    uint32
	prio uint64
}

// ForEachQueued drains q with r.Threads workers, one transaction per
// polled vertex. fn re-activates vertices through emit, NOT by pushing
// into q directly: emits are buffered and flushed to q.Push only after
// the transaction commits (aborted and retried attempts discard theirs).
// This closes the lost-wakeup window of eager pushes under commit-time
// visibility — a vertex pushed before its activating write was visible
// could be popped, observed unimproved, and dropped, with nobody left to
// re-deliver the improvement once it landed.
//
// Workers quiesce when the queue stays empty. Every exit path leaves the
// worker's idle contribution permanently counted (see
// tufast.System.ForEachQueuedCtx), so peers terminate no matter why a
// worker left. When the runtime carries a context, cancellation stops
// the drain promptly and the context's error is returned.
func (r *Runtime) ForEachQueued(q Source, fn func(tx sched.Tx, v uint32, emit func(u uint32, prio uint64)) error) error {
	ctx := r.Ctx
	var firstErr atomic.Value
	var idle atomic.Int64
	var wg sync.WaitGroup
	threads := r.Threads
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := r.worker()
			defer r.release(w)
			var pending []pushReq
			emit := func(u uint32, prio uint64) {
				pending = append(pending, pushReq{v: u, prio: prio})
			}
			idleSpins := 0
			for {
				if firstErr.Load() != nil {
					idle.Add(1)
					return
				}
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						firstErr.CompareAndSwap(nil, err)
						idle.Add(1)
						return
					}
				}
				v, ok := q.Pop()
				if ok {
					idleSpins = 0
				}
				if !ok {
					n := idle.Add(1)
					if int(n) >= threads && q.Len() == 0 {
						return
					}
					idleSpins++
					if idleSpins > 64 {
						time.Sleep(50 * time.Microsecond)
					} else {
						runtime.Gosched()
					}
					idle.Add(-1)
					continue
				}
				hint := r.G.Degree(v)*2 + 2
				err := r.run(w, hint, func(tx sched.Tx) error {
					pending = pending[:0] // a retried attempt re-emits from scratch
					return fn(tx, v, emit)
				})
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					idle.Add(1)
					return
				}
				// Committed: the writes are visible, deliver the wakeups.
				for _, p := range pending {
					q.Push(p.v, p.prio)
				}
				pending = pending[:0]
			}
		}()
	}
	wg.Wait()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// ReadArray copies a vertex array out of the space (after all workers
// finished).
func (r *Runtime) ReadArray(base mem.Addr) []uint64 {
	n := r.G.NumVertices()
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = r.Sp.Load(base + mem.Addr(i))
	}
	return out
}

// ReadFloatArray copies a float64 vertex array out of the space.
func (r *Runtime) ReadFloatArray(base mem.Addr) []float64 {
	n := r.G.NumVertices()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = mem.Float(r.Sp.Load(base + mem.Addr(i)))
	}
	return out
}

// None is the property value meaning "unset".
const None = ^uint64(0)

// checkVertex panics if v is out of range (defensive; algorithms are
// internal callers).
func (r *Runtime) checkVertex(v uint32) {
	if int(v) >= r.G.NumVertices() {
		panic(fmt.Sprintf("algo: vertex %d out of range", v))
	}
}
