package algo

import (
	"tufast/internal/mem"
	"tufast/internal/sched"
	"tufast/internal/worklist"
)

// PageRankResult carries the ranks and convergence metrics.
type PageRankResult struct {
	Rank       []float64
	Iterations uint64 // vertex-transactions processed
}

// PageRank computes PageRank with damping d to residual tolerance eps
// using the asynchronous push (residual) formulation: each vertex
// transaction absorbs its pending residual into its rank and pushes
// damped shares to its out-neighbors' residuals, re-activating any
// neighbor whose residual crosses eps.
//
// This is the algorithm where the paper's in-place-update argument bites:
// workers always read the freshest residuals, so information propagates
// without waiting for a superstep barrier, and total work is far below
// the synchronous (Jacobi) iteration count of BSP systems (§VI-A:
// "TuFast outperforms Ligra and Galois because TuFast supports
// in-place-update").
func PageRank(r *Runtime, d, eps float64) (*PageRankResult, error) {
	g := r.G
	n := g.NumVertices()
	rank := r.NewVertexArray(mem.Word(1 - d))
	resid := r.NewVertexArray(0)
	// Seed residuals as if every vertex had just received (1-d) and must
	// push d * (1-d) / deg onward; equivalently start resid = d*(1-d)
	// scaled by in-shares. The standard initialization pushes from every
	// vertex once: resid[u] += d * (1-d) / deg(v) for each v -> u.
	for v := uint32(0); int(v) < n; v++ {
		dv := g.Degree(v)
		if dv == 0 {
			continue
		}
		share := d * (1 - d) / float64(dv)
		for _, u := range g.Neighbors(v) {
			cur := mem.Float(r.Sp.Load(resid + mem.Addr(u)))
			r.Sp.Store(resid+mem.Addr(u), mem.Word(cur+share))
		}
	}

	q := worklist.NewQueue(r.Threads)
	queued := worklist.NewBitset(n)
	for v := uint32(0); int(v) < n; v++ {
		if mem.Float(r.Sp.Load(resid+mem.Addr(v))) > eps {
			queued.TestAndSet(v)
			q.Push(v)
		}
	}

	res := &PageRankResult{}
	var processed atomicCounter
	err := r.ForEachQueued(DedupFIFO{Q: q, Queued: queued}, func(tx sched.Tx, v uint32, emit func(uint32, uint64)) error {
		processed.inc()
		queued.Clear(v)
		rv := mem.Float(tx.Read(v, resid+mem.Addr(v)))
		if rv <= eps {
			return nil
		}
		tx.Write(v, resid+mem.Addr(v), mem.Word(0))
		cur := mem.Float(tx.Read(v, rank+mem.Addr(v)))
		tx.Write(v, rank+mem.Addr(v), mem.Word(cur+rv))
		deg := g.Degree(v)
		if deg == 0 {
			return nil
		}
		share := d * rv / float64(deg)
		for _, u := range g.Neighbors(v) {
			ru := mem.Float(tx.Read(u, resid+mem.Addr(u)))
			nu := ru + share
			tx.Write(u, resid+mem.Addr(u), mem.Word(nu))
			if nu > eps && ru <= eps {
				// Activation is driver state outside the TM: the emit is
				// delivered only if this transaction commits (so the
				// popped vertex always sees the committed residual), a
				// spurious double-enqueue is deduped by the DedupFIFO's
				// flush-time bitset, and a missed one is prevented by the
				// bitset clear-before-read ordering.
				emit(u, 0)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rank = r.ReadFloatArray(rank)
	res.Iterations = processed.get()
	return res, nil
}
