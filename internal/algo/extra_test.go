package algo

import (
	"math"
	"testing"

	"tufast/internal/core"
	"tufast/internal/graph"
	"tufast/internal/graph/gen"
	"tufast/internal/mem"
)

func extraRuntime(t *testing.T, g *graph.CSR) *Runtime {
	t.Helper()
	sp := mem.NewSpace(SpaceWordsFor(g.NumVertices()))
	return NewRuntime(g, sp, core.New(sp, g.NumVertices(), core.Config{}), 8)
}

func undirected(g *graph.CSR) *graph.CSR {
	edges := make([]graph.Edge, 0, g.NumEdges())
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			edges = append(edges, graph.Edge{U: v, V: u})
		}
	}
	return graph.MustBuild(g.NumVertices(), edges, graph.BuildOptions{Symmetrize: true})
}

func TestKCoreMatchesPeeling(t *testing.T) {
	g := undirected(gen.PowerLaw(2_000, 16_000, 2.1, 13))
	r := extraRuntime(t, g)
	res, err := KCore(r)
	if err != nil {
		t.Fatal(err)
	}
	want := SeqKCore(g)
	for v := range want {
		if res.Core[v] != want[v] {
			t.Fatalf("core[%d]=%d want %d", v, res.Core[v], want[v])
		}
	}
	if res.MaxCore == 0 {
		t.Fatal("degenerate degeneracy")
	}
}

func TestKCoreOnGrid(t *testing.T) {
	g := gen.Grid(20, 20)
	r := extraRuntime(t, g)
	res, err := KCore(r)
	if err != nil {
		t.Fatal(err)
	}
	// A grid's degeneracy is 2.
	if res.MaxCore != 2 {
		t.Fatalf("grid degeneracy %d, want 2", res.MaxCore)
	}
}

func TestGreedyColoringProper(t *testing.T) {
	g := undirected(gen.PowerLaw(2_000, 16_000, 2.1, 29))
	r := extraRuntime(t, g)
	res, err := GreedyColoring(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyColoring(g, res.Color); err != nil {
		t.Fatal(err)
	}
	if res.Colors < 2 {
		t.Fatalf("suspicious palette size %d", res.Colors)
	}
}

func TestGreedyColoringStar(t *testing.T) {
	g := gen.Star(500)
	r := extraRuntime(t, g)
	res, err := GreedyColoring(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyColoring(g, res.Color); err != nil {
		t.Fatal(err)
	}
	if res.Colors != 2 {
		t.Fatalf("star needs exactly 2 colors, used %d", res.Colors)
	}
}

func TestLabelPropagationConverges(t *testing.T) {
	// Two disjoint cliques must get two labels.
	var edges []graph.Edge
	for i := uint32(0); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
			edges = append(edges, graph.Edge{U: i + 10, V: j + 10})
		}
	}
	g := graph.MustBuild(20, edges, graph.BuildOptions{Symmetrize: true})
	r := extraRuntime(t, g)
	res, err := LabelPropagation(r, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 2 {
		t.Fatalf("communities=%d want 2", res.Components)
	}
	for v := 0; v < 10; v++ {
		if res.Component[v] != res.Component[0] {
			t.Fatalf("clique 1 split: %v", res.Component[:10])
		}
		if res.Component[v+10] != res.Component[10] {
			t.Fatalf("clique 2 split: %v", res.Component[10:])
		}
	}
}

func TestClusteringCoefficients(t *testing.T) {
	// Triangle + pendant: vertex 0,1,2 form a triangle; 3 hangs off 0.
	g := graph.MustBuild(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 0, V: 3}},
		graph.BuildOptions{Symmetrize: true})
	r := extraRuntime(t, g)
	cc, err := ClusteringCoefficients(r)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 3, 1, 1, 0}
	for v := range want {
		if math.Abs(cc[v]-want[v]) > 1e-9 {
			t.Fatalf("cc[%d]=%f want %f", v, cc[v], want[v])
		}
	}
}

func TestSeqReferencesOnKnownGraph(t *testing.T) {
	// A path 0-1-2-3 plus an isolated vertex 4 (undirected).
	g := graph.MustBuild(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}},
		graph.BuildOptions{Symmetrize: true})

	bfs := SeqBFS(g, 0)
	for v, want := range []uint64{0, 1, 2, 3, None} {
		if bfs[v] != want {
			t.Fatalf("bfs[%d]=%d want %d", v, bfs[v], want)
		}
	}
	wcc := SeqWCC(g)
	if wcc[3] != 0 || wcc[4] != 4 {
		t.Fatalf("wcc=%v", wcc)
	}
	if tri := SeqTriangles(g); tri != 0 {
		t.Fatalf("path has %d triangles?!", tri)
	}
	tri := graph.MustBuild(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}},
		graph.BuildOptions{Symmetrize: true})
	if got := SeqTriangles(tri); got != 1 {
		t.Fatalf("triangle count %d want 1", got)
	}
	pr := SeqPageRank(g, 0.85, 1e-10)
	var sum float64
	for _, x := range pr {
		sum += x
	}
	// Sum of ranks ~ n*(1-d) + redistributed mass; middle vertices rank higher.
	if !(pr[1] > pr[0] && pr[2] > pr[3]) {
		t.Fatalf("pr shape wrong: %v", pr)
	}
	if sum <= 0 {
		t.Fatal("pr sum non-positive")
	}
	dist := SeqSSSP(g, 0)
	if dist[4] != None || dist[0] != 0 {
		t.Fatalf("sssp=%v", dist)
	}
	w01 := uint64(graph.WeightOf(0, 1, MaxEdgeWeight))
	if dist[1] != w01 {
		t.Fatalf("dist[1]=%d want %d", dist[1], w01)
	}
}

func TestVerifyHelpersRejectBadResults(t *testing.T) {
	g := graph.MustBuild(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}},
		graph.BuildOptions{Symmetrize: true})
	// MIS violations.
	if err := VerifyMIS(g, []bool{true, true, true, false}); err == nil {
		t.Fatal("dependent set accepted")
	}
	if err := VerifyMIS(g, []bool{false, false, true, false}); err == nil {
		t.Fatal("non-maximal set accepted")
	}
	// Matching violations.
	if err := VerifyMatching(g, []uint64{1, 0, None, None}); err == nil {
		t.Fatal("non-maximal matching accepted")
	}
	if err := VerifyMatching(g, []uint64{2, None, 0, None}); err == nil {
		t.Fatal("non-edge match accepted")
	}
	if err := VerifyMatching(g, []uint64{1, None, None, None}); err == nil {
		t.Fatal("asymmetric match accepted")
	}
	// Coloring violations.
	if err := VerifyColoring(g, []uint64{0, 0, 0, 1}); err == nil {
		t.Fatal("monochromatic edge accepted")
	}
	if err := VerifyColoring(g, []uint64{colorNone, 0, 0, 1}); err == nil {
		t.Fatal("uncolored vertex accepted")
	}
}
