package algo

import (
	"container/heap"
	"fmt"
	"math"

	"tufast/internal/graph"
)

// This file holds single-threaded reference implementations and result
// validators. Tests compare every scheduler's and engine's output against
// them; they are deliberately naive and obviously correct.

// SeqPageRank runs synchronous power iteration to an L1 tolerance.
func SeqPageRank(g *graph.CSR, d, eps float64) []float64 {
	n := g.NumVertices()
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 - d
	}
	for iter := 0; iter < 10_000; iter++ {
		for i := range next {
			next[i] = 1 - d
		}
		for v := uint32(0); int(v) < n; v++ {
			deg := g.Degree(v)
			if deg == 0 {
				continue
			}
			share := d * rank[v] / float64(deg)
			for _, u := range g.Neighbors(v) {
				next[u] += share
			}
		}
		var delta float64
		for i := range rank {
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < eps {
			break
		}
	}
	return rank
}

// SeqBFS computes hop levels from source (None = unreachable).
func SeqBFS(g *graph.CSR, source uint32) []uint64 {
	n := g.NumVertices()
	level := make([]uint64, n)
	for i := range level {
		level[i] = None
	}
	level[source] = 0
	queue := []uint32{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if level[u] == None {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return level
}

// SeqWCC labels components with the minimum contained vertex id,
// treating edges as undirected regardless of storage direction.
func SeqWCC(g *graph.CSR) []uint64 {
	n := g.NumVertices()
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b uint32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for v := uint32(0); int(v) < n; v++ {
		for _, u := range g.Neighbors(v) {
			union(v, u)
		}
	}
	// Compress to minimum id per component.
	min := make(map[uint32]uint32)
	for v := uint32(0); int(v) < n; v++ {
		r := find(v)
		if m, ok := min[r]; !ok || v < m {
			min[r] = v
		}
	}
	out := make([]uint64, n)
	for v := uint32(0); int(v) < n; v++ {
		out[v] = uint64(min[find(v)])
	}
	return out
}

// SeqTriangles counts triangles on an undirected graph.
func SeqTriangles(g *graph.CSR) uint64 {
	var total uint64
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		nv := forward(g.Neighbors(v), v)
		for _, u := range nv {
			total += intersectCount(nv, forward(g.Neighbors(u), u))
		}
	}
	return total
}

type dijkItem struct {
	v uint32
	d uint64
}
type dijkHeap []dijkItem

func (h dijkHeap) Len() int           { return len(h) }
func (h dijkHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h dijkHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *dijkHeap) Push(x any)        { *h = append(*h, x.(dijkItem)) }
func (h *dijkHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SeqSSSP runs Dijkstra with the module's deterministic edge weights.
func SeqSSSP(g *graph.CSR, source uint32) []uint64 {
	n := g.NumVertices()
	dist := make([]uint64, n)
	for i := range dist {
		dist[i] = None
	}
	dist[source] = 0
	h := &dijkHeap{{v: source, d: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(dijkItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, u := range g.Neighbors(it.v) {
			nd := it.d + uint64(graph.WeightOf(it.v, u, MaxEdgeWeight))
			if nd < dist[u] {
				dist[u] = nd
				heap.Push(h, dijkItem{v: u, d: nd})
			}
		}
	}
	return dist
}

// VerifyMIS checks independence and maximality on an undirected graph.
func VerifyMIS(g *graph.CSR, inSet []bool) error {
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		if inSet[v] {
			for _, u := range g.Neighbors(v) {
				if u != v && inSet[u] {
					return fmt.Errorf("not independent: both %d and %d in set", v, u)
				}
			}
			continue
		}
		covered := false
		for _, u := range g.Neighbors(v) {
			if inSet[u] {
				covered = true
				break
			}
		}
		if !covered && g.Degree(v) > 0 {
			return fmt.Errorf("not maximal: %d and all its neighbors out of set", v)
		}
		if g.Degree(v) == 0 && !inSet[v] {
			return fmt.Errorf("isolated vertex %d must be in set", v)
		}
	}
	return nil
}

// VerifyMatching checks symmetry, edge-ness and maximality.
func VerifyMatching(g *graph.CSR, match []uint64) error {
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		m := match[v]
		if m == None {
			continue
		}
		u := uint32(m)
		if int(u) >= g.NumVertices() || match[u] != uint64(v) {
			return fmt.Errorf("asymmetric match at %d <-> %d", v, u)
		}
		if !hasEdge(g, v, u) {
			return fmt.Errorf("matched non-edge (%d,%d)", v, u)
		}
	}
	// Maximality: no edge with both endpoints unmatched.
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		if match[v] != None {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if u != v && match[u] == None {
				return fmt.Errorf("not maximal: edge (%d,%d) both unmatched", v, u)
			}
		}
	}
	return nil
}

func hasEdge(g *graph.CSR, v, u uint32) bool {
	nb := g.Neighbors(v)
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		if nb[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nb) && nb[lo] == u
}
