package algo

import (
	"tufast/internal/mem"
	"tufast/internal/sched"
	"tufast/internal/worklist"
)

// BFSResult carries the level array (None for unreachable vertices).
type BFSResult struct {
	Level   []uint64
	Visited int
}

// BFS computes hop distances from source. Each vertex transaction reads
// its own level and relaxes all unvisited out-neighbors, enqueueing them
// (the paper's §IV-E example: "BFS updates all neighbors' distance
// values").
func BFS(r *Runtime, source uint32) (*BFSResult, error) {
	r.checkVertex(source)
	level := r.NewVertexArray(None)
	r.Sp.Store(level+mem.Addr(source), 0)

	q := worklist.NewQueue(r.Threads)
	q.Push(source)

	err := r.ForEachQueued(FIFOSource{q}, func(tx sched.Tx, v uint32, emit func(uint32, uint64)) error {
		lv := tx.Read(v, level+mem.Addr(v))
		if lv == None {
			return nil // stale wakeup
		}
		for _, u := range r.G.Neighbors(v) {
			lu := tx.Read(u, level+mem.Addr(u))
			if lu > lv+1 {
				tx.Write(u, level+mem.Addr(u), lv+1)
				emit(u, 0)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	lv := r.ReadArray(level)
	visited := 0
	for _, x := range lv {
		if x != None {
			visited++
		}
	}
	return &BFSResult{Level: lv, Visited: visited}, nil
}
