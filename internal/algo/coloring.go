package algo

import (
	"fmt"

	"tufast/internal/graph"
	"tufast/internal/mem"
	"tufast/internal/sched"
)

// ColoringResult carries the color of each vertex and the palette size.
type ColoringResult struct {
	Color  []uint64
	Colors int
}

// colorNone marks an uncolored vertex.
const colorNone = ^uint64(0)

// GreedyColoring computes a proper vertex coloring: each vertex
// transaction reads its neighbors' colors and takes the smallest free
// one. Serializability makes the parallel run equivalent to a sequential
// greedy pass, so the result uses at most maxDegree+1 colors — another
// §II-style example of sequential logic running unmodified in parallel.
// Run on an undirected graph.
func GreedyColoring(r *Runtime) (*ColoringResult, error) {
	g := r.G
	color := r.NewVertexArray(colorNone)

	err := r.ForEachVertex(func(tx sched.Tx, v uint32) error {
		if tx.Read(v, color+mem.Addr(v)) != colorNone {
			return nil
		}
		used := make(map[uint64]bool, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			if u == v {
				continue
			}
			if c := tx.Read(u, color+mem.Addr(u)); c != colorNone {
				used[c] = true
			}
		}
		c := uint64(0)
		for used[c] {
			c++
		}
		tx.Write(v, color+mem.Addr(v), c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	colors := r.ReadArray(color)
	res := &ColoringResult{Color: colors}
	seen := map[uint64]bool{}
	for _, c := range colors {
		if !seen[c] {
			seen[c] = true
			res.Colors++
		}
	}
	return res, nil
}

// VerifyColoring checks properness and the maxdeg+1 bound.
func VerifyColoring(g *graph.CSR, color []uint64) error {
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		if color[v] == colorNone {
			return fmt.Errorf("vertex %d uncolored", v)
		}
		if color[v] > uint64(g.MaxDegree()) {
			return fmt.Errorf("vertex %d color %d exceeds maxdeg+1", v, color[v])
		}
		for _, u := range g.Neighbors(v) {
			if u != v && color[u] == color[v] {
				return fmt.Errorf("edge (%d,%d) monochromatic (color %d)", v, u, color[v])
			}
		}
	}
	return nil
}

// LabelPropagation runs synchronous-free community detection: each vertex
// transaction adopts the most frequent label among its neighbors
// (ties to the smallest label), iterating until a fixpoint. The
// paper's §I "ad-hoc analytics" pitch is exactly this kind of job: the
// whole algorithm is the sequential update rule plus a work list.
// Run on an undirected graph. Returns labels and the community count.
func LabelPropagation(r *Runtime, maxRounds int) (*WCCResult, error) {
	g := r.G
	n := g.NumVertices()
	label := r.NewVertexArray(0)
	for v := uint32(0); int(v) < n; v++ {
		r.Sp.Store(label+mem.Addr(v), uint64(v))
	}
	if maxRounds <= 0 {
		maxRounds = 16
	}
	for round := 0; round < maxRounds; round++ {
		changed := &atomicCounter{}
		err := r.ForEachVertex(func(tx sched.Tx, v uint32) error {
			if g.Degree(v) == 0 {
				return nil
			}
			freq := make(map[uint64]int, g.Degree(v))
			for _, u := range g.Neighbors(v) {
				freq[tx.Read(u, label+mem.Addr(u))]++
			}
			best := tx.Read(v, label+mem.Addr(v))
			bestN := 0
			for l, c := range freq {
				if c > bestN || (c == bestN && l < best) {
					best, bestN = l, c
				}
			}
			if best != tx.Read(v, label+mem.Addr(v)) {
				tx.Write(v, label+mem.Addr(v), best)
				changed.inc()
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if changed.get() == 0 {
			break
		}
	}
	labels := r.ReadArray(label)
	seen := map[uint64]struct{}{}
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return &WCCResult{Component: labels, Components: len(seen)}, nil
}

// ClusteringCoefficients computes the local clustering coefficient of
// every vertex (triangles through v over deg(v) choose 2), reading the
// immutable adjacency directly and committing the per-vertex results
// transactionally. Run on an undirected graph.
func ClusteringCoefficients(r *Runtime) ([]float64, error) {
	g := r.G
	coeff := r.NewVertexArray(0)
	err := r.ForEachVertex(func(tx sched.Tx, v uint32) error {
		nb := g.Neighbors(v)
		d := len(nb)
		if d < 2 {
			return nil
		}
		var tri uint64
		for _, u := range nb {
			tri += intersectCount(nb, g.Neighbors(u))
		}
		// Each triangle through v counted twice (once per edge pair
		// ordering); pairs = d*(d-1).
		c := float64(tri) / float64(d*(d-1))
		tx.Write(v, coeff+mem.Addr(v), mem.Word(c))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r.ReadFloatArray(coeff), nil
}
