package algo

import (
	"tufast/internal/mem"
	"tufast/internal/sched"
	"tufast/internal/worklist"
)

// WCCResult carries the component labels (minimum vertex id per
// component) and the component count.
type WCCResult struct {
	Component  []uint64
	Components int
}

// WCC computes weakly connected components by asynchronous minimum-label
// propagation: every vertex starts as its own label; a vertex transaction
// pulls the smallest label among itself and its neighbors and pushes it
// to any neighbor with a larger one, re-activating it. On a symmetrized
// graph the result is exact connected components; on a directed graph the
// caller symmetrizes first (the paper converts to undirected for such
// workloads).
func WCC(r *Runtime) (*WCCResult, error) {
	g := r.G
	n := g.NumVertices()
	comp := r.NewVertexArray(0)
	for v := uint32(0); int(v) < n; v++ {
		r.Sp.Store(comp+mem.Addr(v), uint64(v))
	}

	q := worklist.NewQueue(r.Threads)
	for v := uint32(0); int(v) < n; v++ {
		q.Push(v)
	}

	err := r.ForEachQueued(FIFOSource{q}, func(tx sched.Tx, v uint32, emit func(uint32, uint64)) error {
		cv := tx.Read(v, comp+mem.Addr(v))
		min := cv
		for _, u := range g.Neighbors(v) {
			if cu := tx.Read(u, comp+mem.Addr(u)); cu < min {
				min = cu
			}
		}
		if min < cv {
			tx.Write(v, comp+mem.Addr(v), min)
			// Our own label improved: neighbors with larger labels may
			// now improve too.
			emit(v, 0)
		}
		for _, u := range g.Neighbors(v) {
			if cu := tx.Read(u, comp+mem.Addr(u)); cu > min {
				tx.Write(u, comp+mem.Addr(u), min)
				emit(u, 0)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	labels := r.ReadArray(comp)
	seen := make(map[uint64]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return &WCCResult{Component: labels, Components: len(seen)}, nil
}
