package algo

import (
	"tufast/internal/mem"
	"tufast/internal/sched"
)

// TriangleResult carries the global triangle count.
type TriangleResult struct {
	Triangles uint64
}

// Triangles counts triangles on an undirected graph with the standard
// ordered-intersection method: vertex v counts triangles (v, u, w) with
// v < u < w by intersecting its forward adjacency with each forward
// neighbor's. Adjacency is immutable so the intersections read it
// directly; each vertex's count lands in shared TM state (its slot of a
// per-vertex counter array), making the workload the paper's "neighbors
// only, no global communication" case — transactions never conflict and
// everything commits in H mode.
func Triangles(r *Runtime) (*TriangleResult, error) {
	g := r.G
	counts := r.NewVertexArray(0)

	err := r.ForEachVertex(func(tx sched.Tx, v uint32) error {
		nv := forward(g.Neighbors(v), v)
		var local uint64
		for _, u := range nv {
			local += intersectCount(nv, forward(g.Neighbors(u), u))
		}
		if local > 0 {
			tx.Write(v, counts+mem.Addr(v), local)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var total uint64
	for _, c := range r.ReadArray(counts) {
		total += c
	}
	return &TriangleResult{Triangles: total}, nil
}

// forward returns the suffix of sorted adjacency strictly greater than v.
func forward(nb []uint32, v uint32) []uint32 {
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		if nb[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return nb[lo:]
}

// intersectCount returns |a ∩ b| for sorted slices.
func intersectCount(a, b []uint32) uint64 {
	var n uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
