// Package wal is tufastd's write-ahead log: the durability record of
// the mutation plane.
//
// The unit of logging is the committed mutation batch — exactly the
// epoch-bump points of the MVCC overlay. The serving layer appends one
// record per effective POST /v1/edges batch, inside the same
// single-writer bracket that serializes batches, so log order equals
// commit order by construction and a record's epoch is the epoch its
// batch published. Recovery is then trivial to state: load the newest
// valid checkpoint (a compacted CSR at epoch C) and re-apply every
// record with epoch > C through the normal stream-apply path; the
// result is byte-identical to the pre-crash topology for every
// acknowledged batch.
//
// On disk the log is a directory of segments (`wal-<seq>.seg`), each a
// 16-byte header followed by length+CRC32-C framed records:
//
//	frame:   [payload len uint32][crc32c(payload) uint32][payload]
//	payload: [epoch uint64][nops uint32] nops × [time uint64][u uint32][v uint32][flags uint32]
//
// A crash can tear at most the frame being written when the process
// died, and only at the log's tail (frames are appended under one
// lock, fsync barriers never reorder them). Open therefore repairs
// rather than refuses: it scans every segment, truncates the file at
// the first bad frame (length insane, payload short, or CRC mismatch),
// drops any later segments, and reports what it did — a torn tail
// costs exactly the unacknowledged batch that was mid-write, never the
// boot.
//
// Sync policy is the durability/throughput dial: SyncAlways fsyncs
// inside every Append (an acknowledged batch is durable, period),
// SyncInterval fsyncs on a timer (a crash loses at most the last
// interval of acknowledged batches), SyncNone leaves flushing to the
// OS (crash-consistent but not crash-durable — the torn-tail repair
// still applies). Checkpoints bound replay: TruncateBelow removes
// whole segments whose records are all covered by a retained
// checkpoint.
//
// The log is fail-stop: the first write or fsync error poisons it and
// every later Append returns ErrLogFailed. The torn-tail repair is
// only sound because nothing valid can follow a torn frame — a log
// that shrugged off a failed write and kept appending (the file is
// O_APPEND, so later writes would land after the torn bytes) would
// have the next boot truncate away frames that were fsynced and
// acknowledged AFTER the error. Likewise a failed fsync may already
// have lost its dirty pages (the kernel marks them clean regardless),
// so retrying it cannot restore the contract. Recovery from poison is
// a restart: the next Open repairs the tail and the acknowledged
// prefix replays intact.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tufast/internal/dyngraph"
	"tufast/internal/fsx"
)

// Op is one edge mutation, as streamed through the mutation plane.
type Op = dyngraph.Op

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs inside every Append: when Append returns, the
	// record is durable. The policy the acknowledged-batch contract
	// assumes, and the default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer (Options.SyncInterval): a crash
	// loses at most the trailing interval of acknowledged batches.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS flushes when it likes.
	SyncNone
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the flag spelling ("always", "interval",
// "none").
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown sync policy %q (want always, interval, or none)", s)
}

// Hooks injects faults into the WAL's file layer. Test-only: crash
// tests use them to produce, through the real append path, exactly the
// on-disk states a SIGKILL leaves behind.
type Hooks struct {
	// TrimAppend, when non-nil, is consulted with every frame about to
	// be written; returning n < len(frame) writes only that prefix (a
	// torn append) and fails the Append with ErrInjectedCrash, after
	// which the log refuses further appends — the process "died".
	TrimAppend func(frame []byte) int
	// SyncErr, when non-nil, runs before every fsync; a non-nil return
	// is reported as the fsync's error and poisons the log like a real
	// one would.
	SyncErr func() error
}

// ErrInjectedCrash is returned by Append when Hooks.TrimAppend
// simulated a mid-write crash.
var ErrInjectedCrash = errors.New("wal: injected crash during append")

// ErrLogFailed is returned (wrapping the original cause) by every
// operation on a log that fail-stopped; see Poison.
var ErrLogFailed = errors.New("wal: log failed")

// Options tunes a Log. Zero values take the documented defaults.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the SyncInterval timer period (default 50ms).
	SyncInterval time.Duration
	// SegmentBytes rotates to a fresh segment once the active one
	// exceeds this size (default 64 MiB).
	SegmentBytes int64
	// Hooks injects faults for crash tests; nil in production.
	Hooks *Hooks
}

func (o Options) withDefaults() Options {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

const (
	segMagic   = uint64(0x314c4157_46555431) // "1TUF" | "WAL1"
	headerSize = 16                          // magic + reserved word
	frameHead  = 8                           // payload len + crc32c
	opBytes    = 20                          // time(8) u(4) v(4) flags(4)
	recHead    = 12                          // epoch(8) + nops(4)
	flagDel    = uint32(1)

	// maxPayload rejects insane length fields during scan so a torn
	// length word cannot make the reader allocate gigabytes. Generous:
	// ~3.3M ops per record, far above any MaxBatch.
	maxPayload = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segment is one on-disk log file.
type segment struct {
	seq       uint64
	path      string
	size      int64  // valid bytes (post-repair)
	records   int    // valid records
	lastEpoch uint64 // epoch of the last record (0 when records == 0)
}

// Stats are the log's cumulative counters since Open.
type Stats struct {
	// Appends / AppendedOps count successful Append calls and the ops
	// they carried.
	Appends     uint64
	AppendedOps uint64
	// Fsyncs counts fdatasync/fsync calls on segment files.
	Fsyncs uint64
	// Rotations counts segment rollovers.
	Rotations uint64
	// TruncatedSegments counts segments removed by TruncateBelow.
	TruncatedSegments uint64
}

// ScanResult describes what Open found (and repaired) on disk.
type ScanResult struct {
	// Batches / Ops count the valid records surviving repair.
	Batches, Ops int
	// FirstEpoch / LastEpoch bound the surviving records' epochs
	// (both 0 when the log is empty).
	FirstEpoch, LastEpoch uint64
	// TornTail is true when a bad frame was found and the log was
	// truncated at it.
	TornTail bool
	// DroppedSegments counts whole segments discarded because they
	// followed a torn frame.
	DroppedSegments int
}

// Log is an append-only segmented write-ahead log. One writer
// (Append/Rotate/TruncateBelow are serialized internally); Replay must
// run before the first Append, which is how recovery uses it.
type Log struct {
	dir string
	opt Options

	mu      sync.Mutex
	f       *os.File // active segment, open for append
	active  segment
	sealed  []segment // older segments, oldest first
	dirty   bool      // bytes appended since the last fsync
	failErr error     // non-nil once the log fail-stopped; see Poison
	buf     []byte    // frame scratch, reused across Appends (under mu)

	appends     atomic.Uint64
	appendedOps atomic.Uint64
	fsyncs      atomic.Uint64
	rotations   atomic.Uint64
	truncated   atomic.Uint64

	syncStop chan struct{} // closes to stop the interval-sync goroutine
	syncDone chan struct{}
}

// Open opens (creating if needed) the log directory, repairs any torn
// tail, and readies the log for Replay-then-Append. The returned
// ScanResult reports the surviving records and whatever repair was
// done.
func Open(dir string, opt Options) (*Log, ScanResult, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, ScanResult{}, err
	}
	l := &Log{dir: dir, opt: opt}
	res, err := l.scanAndRepair()
	if err != nil {
		return nil, res, err
	}
	if err := l.openActive(); err != nil {
		return nil, res, err
	}
	if opt.Sync == SyncInterval {
		l.syncStop = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, res, nil
}

// scanAndRepair walks the segments in sequence order, validating every
// frame. The first bad frame truncates its segment there and drops all
// later segments; an unreadable header truncates the segment to empty.
func (l *Log) scanAndRepair() (ScanResult, error) {
	var res ScanResult
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return res, err
	}
	var segs []segment
	for _, e := range ents {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%016x.seg", &seq); err != nil {
			continue
		}
		segs = append(segs, segment{seq: seq, path: filepath.Join(l.dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	torn := false
	for i := range segs {
		s := &segs[i]
		if torn {
			// Records after a torn frame are unreachable in commit
			// order; keeping them would replay a gap. Drop the segment.
			if err := fsx.RemoveDurable(s.path); err != nil {
				return res, err
			}
			res.DroppedSegments++
			continue
		}
		segTorn, err := scanSegment(s, func(epoch uint64, nops int) {
			if res.Batches == 0 {
				res.FirstEpoch = epoch
			}
			res.LastEpoch = epoch
			res.Batches++
			res.Ops += nops
		})
		if err != nil {
			return res, err
		}
		if segTorn {
			torn = true
			res.TornTail = true
			// The repair must be durable before the first new append: a
			// truncate left sitting in the page cache can, after a second
			// crash, resurface the stale torn bytes beneath frames
			// acknowledged since this boot — which the NEXT scan would
			// then truncate away.
			if err := truncateDurable(s.path, s.size); err != nil {
				return res, err
			}
			l.fsyncs.Add(1)
		}
		l.sealed = append(l.sealed, *s)
	}
	return res, nil
}

// truncateDurable truncates path to size and fsyncs it (truncation is
// inode metadata plus data-page drops, so the file fsync alone makes
// it durable — no directory entry changes).
func truncateDurable(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// scanSegment validates s's frames, filling size/records/lastEpoch
// with the valid prefix. Returns whether a bad frame (or header) was
// found. onRecord fires per valid record in order.
func scanSegment(s *segment, onRecord func(epoch uint64, nops int)) (bool, error) {
	raw, err := os.ReadFile(s.path)
	if err != nil {
		return false, err
	}
	if len(raw) < headerSize || binary.LittleEndian.Uint64(raw[0:8]) != segMagic {
		// Torn before the header finished (or foreign bytes): keep the
		// file but treat it as empty; openActive rewrites the header.
		s.size = 0
		return true, nil
	}
	off := int64(headerSize)
	for {
		rest := raw[off:]
		if len(rest) == 0 {
			return false, nil // clean end
		}
		if len(rest) < frameHead {
			return true, nil // torn frame head
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if plen < recHead || plen > maxPayload || int(plen)%opBytes != recHead%opBytes {
			return true, nil // insane length word
		}
		if len(rest) < frameHead+int(plen) {
			return true, nil // torn payload
		}
		payload := rest[frameHead : frameHead+int(plen)]
		if crc32.Checksum(payload, crcTable) != sum {
			return true, nil // corrupt payload
		}
		epoch := binary.LittleEndian.Uint64(payload[0:8])
		nops := int(binary.LittleEndian.Uint32(payload[8:12]))
		if recHead+nops*opBytes != int(plen) {
			return true, nil // op count disagrees with length
		}
		off += int64(frameHead + int(plen))
		s.size = off
		s.records++
		s.lastEpoch = epoch
		onRecord(epoch, nops)
	}
}

// openActive opens the last surviving segment for append (creating
// segment 1 on a fresh log, or rewriting the header of a
// truncated-to-empty one).
func (l *Log) openActive() error {
	if len(l.sealed) == 0 {
		return l.createSegment(1)
	}
	s := l.sealed[len(l.sealed)-1]
	l.sealed = l.sealed[:len(l.sealed)-1]
	if s.size == 0 {
		// Header was torn: rewrite the file from scratch.
		if err := fsx.RemoveDurable(s.path); err != nil {
			return err
		}
		return l.createSegment(s.seq)
	}
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f, l.active = f, s
	return nil
}

// createSegment creates and headers a fresh segment with the given
// sequence number and makes it active.
func (l *Log) createSegment(seq uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%016x.seg", seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], segMagic)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	l.fsyncs.Add(1)
	if err := fsx.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.active = segment{seq: seq, path: path, size: headerSize}
	return nil
}

// encodeRecord frames one batch record into buf (reused across calls).
func encodeRecord(buf []byte, epoch uint64, ops []Op) []byte {
	plen := recHead + len(ops)*opBytes
	need := frameHead + plen
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	payload := buf[frameHead:]
	binary.LittleEndian.PutUint64(payload[0:8], epoch)
	binary.LittleEndian.PutUint32(payload[8:12], uint32(len(ops)))
	off := recHead
	for _, op := range ops {
		binary.LittleEndian.PutUint64(payload[off:], op.Time)
		binary.LittleEndian.PutUint32(payload[off+8:], op.U)
		binary.LittleEndian.PutUint32(payload[off+12:], op.V)
		var flags uint32
		if op.Del {
			flags = flagDel
		}
		binary.LittleEndian.PutUint32(payload[off+16:], flags)
		off += opBytes
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(plen))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	return buf
}

// Append logs one committed batch: the epoch its bump published and
// the ops it carried (in applied order). Under SyncAlways the record
// is durable when Append returns; the caller acknowledges the batch
// only after that. Epochs must be appended in nondecreasing order —
// the serving layer's single-writer mutation bracket provides that.
func (l *Log) Append(epoch uint64, ops []Op) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failErr != nil {
		return l.failedLocked()
	}
	if l.f == nil {
		return errors.New("wal: log closed")
	}
	l.buf = encodeRecord(l.buf, epoch, ops)
	frame := l.buf
	if l.active.size+int64(len(frame)) > l.opt.SegmentBytes && l.active.records > 0 {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	n := len(frame)
	if h := l.opt.Hooks; h != nil && h.TrimAppend != nil {
		n = h.TrimAppend(frame)
	}
	if _, err := l.f.Write(frame[:n]); err != nil {
		// A failed write (ENOSPC, EIO) may have landed a prefix of the
		// frame; O_APPEND would put the next frame after those torn
		// bytes, and the next boot's repair would then discard it —
		// acknowledged or not. Fail-stop instead (see package doc).
		l.poisonLocked(fmt.Errorf("wal: append: %w", err))
		return l.failedLocked()
	}
	if n < len(frame) {
		// Injected mid-write crash: the torn frame is on disk, the
		// process is "dead" — no record bookkeeping, no acknowledgment.
		l.poisonLocked(ErrInjectedCrash)
		return ErrInjectedCrash
	}
	l.active.size += int64(len(frame))
	l.active.records++
	l.active.lastEpoch = epoch
	l.dirty = true
	if l.opt.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	l.appends.Add(1)
	l.appendedOps.Add(uint64(len(ops)))
	return nil
}

// Poison fail-stops the log: every later Append, Sync, or rotation
// returns ErrLogFailed wrapping cause. The log poisons itself on any
// write or fsync error of its own; the serving layer calls it when the
// in-memory commit state diverges from anything a record could replay
// (a partially applied batch). The first cause sticks. Recovery is a
// restart — the next Open repairs the tail and replays exactly the
// acknowledged records.
func (l *Log) Poison(cause error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.poisonLocked(cause)
}

// Err returns the cause the log fail-stopped with, or nil while the
// log is healthy.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failErr
}

func (l *Log) poisonLocked(cause error) {
	if l.failErr == nil {
		l.failErr = cause
	}
}

func (l *Log) failedLocked() error {
	return fmt.Errorf("%w: %w; restart to recover", ErrLogFailed, l.failErr)
}

// syncLocked fsyncs the active segment; callers hold l.mu.
func (l *Log) syncLocked() error {
	if l.failErr != nil {
		return l.failedLocked()
	}
	if !l.dirty || l.f == nil {
		return nil
	}
	if h := l.opt.Hooks; h != nil && h.SyncErr != nil {
		if err := h.SyncErr(); err != nil {
			l.poisonLocked(fmt.Errorf("wal: fsync: %w", err))
			return l.failedLocked()
		}
	}
	if err := l.f.Sync(); err != nil {
		// The failed fsync may already have dropped the dirty pages
		// (the kernel cleans them whether or not the write-back
		// succeeded), so a retry that "succeeds" proves nothing —
		// the classic fsync-gate trap. Fail-stop.
		l.poisonLocked(fmt.Errorf("wal: fsync: %w", err))
		return l.failedLocked()
	}
	l.fsyncs.Add(1)
	l.dirty = false
	return nil
}

// Sync forces an fsync of any unflushed appends (used by drain, and as
// the interval policy's timer body).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// syncLoop is the SyncInterval flusher.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	tick := time.NewTicker(l.opt.SyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-l.syncStop:
			return
		case <-tick.C:
			// A failed interval fsync poisons the log (see syncLocked);
			// later ticks then return immediately. The loop keeps
			// running only so Close's handshake stays uniform.
			_ = l.Sync()
		}
	}
}

// rotateLocked seals the active segment and opens the next one;
// callers hold l.mu.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.sealed = append(l.sealed, l.active)
	seq := l.active.seq + 1
	l.f = nil
	if err := l.createSegment(seq); err != nil {
		return err
	}
	l.rotations.Add(1)
	return nil
}

// TruncateBelow removes segments made fully redundant by a checkpoint
// at epoch: every record in them has epoch ≤ the argument, so replay
// from that checkpoint never needs them. The active segment rotates
// first when it too is fully covered, so a long-quiet log still
// shrinks to one empty segment. Pass the OLDEST retained checkpoint's
// epoch — truncating below the newest would strand older checkpoints
// kept as corruption fallbacks without the tail that follows them.
func (l *Log) TruncateBelow(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil && l.active.records > 0 && l.active.lastEpoch <= epoch {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	kept := l.sealed[:0]
	for _, s := range l.sealed {
		if s.records > 0 && s.lastEpoch <= epoch {
			if err := fsx.RemoveDurable(s.path); err != nil {
				return err
			}
			l.truncated.Add(1)
			continue
		}
		kept = append(kept, s)
	}
	l.sealed = kept
	return nil
}

// Replay streams every surviving record with epoch > after, in log
// order, to fn. It must run before the first Append (recovery does:
// open, replay, then serve); fn errors abort the replay.
func (l *Log) Replay(after uint64, fn func(epoch uint64, ops []Op) error) error {
	l.mu.Lock()
	segs := append(append([]segment(nil), l.sealed...), l.active)
	l.mu.Unlock()
	for _, s := range segs {
		if s.records == 0 {
			continue
		}
		if err := replaySegment(s, after, fn); err != nil {
			return err
		}
	}
	return nil
}

// ReplayPipelined is Replay with frame decode overlapped against fn:
// a decoder goroutine reads and decodes segments, handing batches over
// a channel holding at most depth decoded batches, while the caller's
// goroutine runs fn. Record order is unchanged — one decoder, one
// consumer, one FIFO — so it is a drop-in for Replay wherever fn does
// real work per batch (recovery's stream-apply), buying the decode
// time back for free. Unlike Replay's fn, which must not retain ops
// past its return, each pipelined batch owns its slice (the copy is
// what the overlap requires anyway). Same contract otherwise: run
// before the first Append; fn errors abort the replay.
func (l *Log) ReplayPipelined(after uint64, depth int, fn func(epoch uint64, ops []Op) error) error {
	if depth < 1 {
		depth = 1
	}
	type batch struct {
		epoch uint64
		ops   []Op
	}
	out := make(chan batch, depth)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		defer close(out)
		errc <- l.Replay(after, func(epoch uint64, ops []Op) error {
			b := batch{epoch: epoch, ops: append([]Op(nil), ops...)}
			select {
			case out <- b:
				return nil
			case <-stop:
				return errReplayStopped
			}
		})
	}()
	for b := range out {
		if err := fn(b.epoch, b.ops); err != nil {
			close(stop)
			for range out { // unblock and drain the decoder
			}
			<-errc
			return err
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, errReplayStopped) {
		return err
	}
	return nil
}

// errReplayStopped is the decoder's internal abort signal when the
// consumer side of ReplayPipelined failed first.
var errReplayStopped = errors.New("wal: replay stopped by consumer")

// replaySegment decodes s's (already validated) frames.
func replaySegment(s segment, after uint64, fn func(epoch uint64, ops []Op) error) error {
	raw, err := os.ReadFile(s.path)
	if err != nil {
		return err
	}
	if int64(len(raw)) < s.size {
		return fmt.Errorf("wal: %s shrank under us", s.path)
	}
	raw = raw[:s.size]
	off := headerSize
	var ops []Op
	for off < len(raw) {
		plen := int(binary.LittleEndian.Uint32(raw[off : off+4]))
		payload := raw[off+frameHead : off+frameHead+plen]
		epoch := binary.LittleEndian.Uint64(payload[0:8])
		nops := int(binary.LittleEndian.Uint32(payload[8:12]))
		if epoch > after {
			ops = ops[:0]
			p := recHead
			for i := 0; i < nops; i++ {
				ops = append(ops, Op{
					Time: binary.LittleEndian.Uint64(payload[p:]),
					U:    binary.LittleEndian.Uint32(payload[p+8:]),
					V:    binary.LittleEndian.Uint32(payload[p+12:]),
					Del:  binary.LittleEndian.Uint32(payload[p+16:])&flagDel != 0,
				})
				p += opBytes
			}
			if err := fn(epoch, ops); err != nil {
				return err
			}
		}
		off += frameHead + plen
	}
	return nil
}

// Stats returns the cumulative counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:           l.appends.Load(),
		AppendedOps:       l.appendedOps.Load(),
		Fsyncs:            l.fsyncs.Load(),
		Rotations:         l.rotations.Load(),
		TruncatedSegments: l.truncated.Load(),
	}
}

// Close flushes and closes the log. Idempotent.
func (l *Log) Close() error {
	if l.syncStop != nil {
		select {
		case <-l.syncStop:
		default:
			close(l.syncStop)
			<-l.syncDone
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
