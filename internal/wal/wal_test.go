package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mkOps(base uint64, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Time: base + uint64(i), U: uint32(i), V: uint32(i + 1), Del: i%3 == 0}
	}
	return ops
}

// collect replays everything after `after` into a flat record list.
func collect(t *testing.T, l *Log, after uint64) (epochs []uint64, ops [][]Op) {
	t.Helper()
	err := l.Replay(after, func(epoch uint64, batch []Op) error {
		epochs = append(epochs, epoch)
		ops = append(ops, append([]Op(nil), batch...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, res, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 0 || res.TornTail {
		t.Fatalf("fresh log scan: %+v", res)
	}
	want := [][]Op{mkOps(1, 3), mkOps(10, 1), mkOps(20, 7), nil}
	for i, ops := range want {
		if err := l.Append(uint64(i+1), ops); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, res2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if res2.Batches != 4 || res2.Ops != 11 || res2.TornTail {
		t.Fatalf("reopen scan: %+v", res2)
	}
	if res2.FirstEpoch != 1 || res2.LastEpoch != 4 {
		t.Fatalf("epoch bounds: %+v", res2)
	}
	epochs, got := collect(t, l2, 0)
	if len(epochs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(epochs))
	}
	for i, ops := range got {
		if epochs[i] != uint64(i+1) {
			t.Fatalf("record %d epoch %d", i, epochs[i])
		}
		if len(ops) != len(want[i]) {
			t.Fatalf("record %d: %d ops, want %d", i, len(ops), len(want[i]))
		}
		for j, op := range ops {
			if op != want[i][j] {
				t.Fatalf("record %d op %d: %+v != %+v", i, j, op, want[i][j])
			}
		}
	}
	// Replay-after skips covered epochs.
	epochs, _ = collect(t, l2, 2)
	if len(epochs) != 2 || epochs[0] != 3 {
		t.Fatalf("replay after 2: %v", epochs)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 3; e++ {
		if err := l.Append(e, mkOps(e*10, 2)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Simulate a kill mid-append: garbage partial frame at the tail.
	seg := filepath.Join(dir, "wal-0000000000000001.seg")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x2c, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, res, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if !res.TornTail || res.Batches != 3 || res.LastEpoch != 3 {
		t.Fatalf("scan: %+v", res)
	}
	// The repaired log must accept new appends and replay cleanly.
	if err := l2.Append(4, mkOps(40, 1)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, res3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if res3.TornTail || res3.Batches != 4 || res3.LastEpoch != 4 {
		t.Fatalf("post-repair scan: %+v", res3)
	}
}

func TestCorruptMidFrameDropsSuffixAndLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 200}) // force rotation
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 10; e++ {
		if err := l.Append(e, mkOps(e*10, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Rotations == 0 {
		t.Fatal("expected rotations with a 200-byte segment cap")
	}
	l.Close()

	// Corrupt a payload byte inside the FIRST segment: everything from
	// that frame on — including all later segments — must be dropped.
	seg1 := filepath.Join(dir, "wal-0000000000000001.seg")
	raw, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+frameHead+4] ^= 0xff // inside first record's payload
	if err := os.WriteFile(seg1, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, res, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l2.Close()
	if !res.TornTail || res.Batches != 0 || res.DroppedSegments == 0 {
		t.Fatalf("scan: %+v", res)
	}
	epochs, _ := collect(t, l2, 0)
	if len(epochs) != 0 {
		t.Fatalf("replayed %v from a fully corrupt log", epochs)
	}
}

func TestRotationAndTruncateBelow(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for e := uint64(1); e <= 20; e++ {
		if err := l.Append(e, mkOps(e, 4)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := os.ReadDir(dir)
	if len(before) < 3 {
		t.Fatalf("expected several segments, got %d", len(before))
	}
	if err := l.TruncateBelow(15); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadDir(dir)
	if len(after) >= len(before) {
		t.Fatalf("truncate removed nothing: %d -> %d segments", len(before), len(after))
	}
	// Epochs 16..20 must survive; nothing above 15 may be lost.
	epochs, _ := collect(t, l, 15)
	if len(epochs) != 5 || epochs[0] != 16 || epochs[4] != 20 {
		t.Fatalf("replay after truncate: %v", epochs)
	}
	// Truncating everything rotates the active segment away too.
	if err := l.TruncateBelow(20); err != nil {
		t.Fatal(err)
	}
	epochs, _ = collect(t, l, 0)
	if len(epochs) != 0 {
		t.Fatalf("records survived full truncate: %v", epochs)
	}
	// And the log still accepts appends afterwards.
	if err := l.Append(21, mkOps(1, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		l, _, err := Open(t.TempDir(), Options{Sync: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		base := l.Stats().Fsyncs
		for e := uint64(1); e <= 5; e++ {
			if err := l.Append(e, mkOps(e, 1)); err != nil {
				t.Fatal(err)
			}
		}
		if got := l.Stats().Fsyncs - base; got != 5 {
			t.Fatalf("SyncAlways: %d fsyncs for 5 appends", got)
		}
	})
	t.Run("interval", func(t *testing.T) {
		l, _, err := Open(t.TempDir(), Options{Sync: SyncInterval, SyncInterval: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		base := l.Stats().Fsyncs
		if err := l.Append(1, mkOps(1, 1)); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for l.Stats().Fsyncs == base {
			if time.Now().After(deadline) {
				t.Fatal("interval sync never fired")
			}
			time.Sleep(time.Millisecond)
		}
	})
	t.Run("none", func(t *testing.T) {
		l, _, err := Open(t.TempDir(), Options{Sync: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		base := l.Stats().Fsyncs
		for e := uint64(1); e <= 5; e++ {
			if err := l.Append(e, mkOps(e, 1)); err != nil {
				t.Fatal(err)
			}
		}
		if got := l.Stats().Fsyncs - base; got != 0 {
			t.Fatalf("SyncNone: %d fsyncs before close", got)
		}
		l.Close() // close still flushes
	})
}

func TestInjectedCrashTornAppend(t *testing.T) {
	dir := t.TempDir()
	crashAt := 3 // batches to accept before tearing the 4th
	var seen int
	hooks := &Hooks{TrimAppend: func(frame []byte) int {
		seen++
		if seen > crashAt {
			return len(frame) / 2 // tear the frame mid-payload
		}
		return len(frame)
	}}
	l, _, err := Open(dir, Options{Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	var lastAcked uint64
	for e := uint64(1); ; e++ {
		err := l.Append(e, mkOps(e, 2))
		if errors.Is(err, ErrInjectedCrash) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		lastAcked = e
	}
	if lastAcked != 3 {
		t.Fatalf("acked %d batches before crash, want 3", lastAcked)
	}
	// The "dead" log refuses further work.
	if err := l.Append(99, nil); err == nil {
		t.Fatal("append succeeded after simulated crash")
	}
	l.Close()

	// Reboot: exactly the acknowledged batches survive.
	l2, res, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !res.TornTail {
		t.Fatal("torn tail not detected")
	}
	if res.Batches != int(lastAcked) || res.LastEpoch != lastAcked {
		t.Fatalf("scan after crash: %+v, want %d batches", res, lastAcked)
	}
}

// A failed segment write must fail-stop the log: the tail may hold
// torn bytes, and any append accepted after them would be silently
// truncated away by the next boot's repair — after being acknowledged.
func TestWriteErrorFailStops(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 2; e++ {
		if err := l.Append(e, mkOps(e*10, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// White-box: yank the fd so the next Write fails like EIO would.
	l.f.Close()
	if err := l.Append(3, mkOps(30, 1)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append on broken file: %v, want ErrLogFailed", err)
	}
	if l.Err() == nil {
		t.Fatal("Err() nil after a failed write")
	}
	// The poison sticks even though the fd trouble "cleared": a torn
	// tail might be on disk, so nothing may be appended over it.
	if err := l.Append(4, mkOps(40, 1)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after fail-stop: %v, want ErrLogFailed", err)
	}
	l.Close()

	// Reboot recovers: the acknowledged batches, and only those.
	l2, res, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if res.Batches != 2 || res.LastEpoch != 2 {
		t.Fatalf("scan after fail-stop: %+v", res)
	}
	if err := l2.Append(3, mkOps(30, 1)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// A failed fsync under SyncAlways must fail-stop too: the kernel may
// have discarded the dirty pages, so bookkeeping that already advanced
// cannot be trusted and no later append may be acknowledged.
func TestSyncErrorFailStops(t *testing.T) {
	dir := t.TempDir()
	failing := false
	hooks := &Hooks{SyncErr: func() error {
		if failing {
			return errors.New("injected fsync error")
		}
		return nil
	}}
	l, _, err := Open(dir, Options{Sync: SyncAlways, Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 2; e++ {
		if err := l.Append(e, mkOps(e*10, 2)); err != nil {
			t.Fatal(err)
		}
	}
	failing = true
	if err := l.Append(3, mkOps(30, 1)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append with failing fsync: %v, want ErrLogFailed", err)
	}
	failing = false // "disk recovered" — too late, the pages may be gone
	if err := l.Append(4, mkOps(40, 1)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after fsync fail-stop: %v, want ErrLogFailed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("sync after fail-stop: %v, want ErrLogFailed", err)
	}
	l.Close()

	// Reboot: both acknowledged batches survive. Batch 3's frame was
	// written before its fsync failed, so it may legitimately survive
	// too (it was never acknowledged — indeterminate is allowed);
	// batch 4 must not exist.
	l2, res, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	epochs, _ := collect(t, l2, 0)
	if len(epochs) < 2 || epochs[0] != 1 || epochs[1] != 2 {
		t.Fatalf("acknowledged epochs lost: %v", epochs)
	}
	if res.LastEpoch > 3 {
		t.Fatalf("unacknowledged epoch survived: %+v", res)
	}
}

// Poison is the serving layer's fail-stop entry point (used when a
// partially applied batch makes memory unrepresentable in the log).
func TestPoisonRefusesAppends(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(1, mkOps(1, 1)); err != nil {
		t.Fatal(err)
	}
	cause := errors.New("partially applied batch")
	l.Poison(cause)
	if err := l.Append(2, mkOps(2, 1)); !errors.Is(err, ErrLogFailed) || !errors.Is(err, cause) {
		t.Fatalf("append after Poison: %v", err)
	}
	if !errors.Is(l.Err(), cause) {
		t.Fatalf("Err() = %v, want the first cause", l.Err())
	}
	l.Poison(errors.New("second cause"))
	if !errors.Is(l.Err(), cause) {
		t.Fatal("second Poison overwrote the first cause")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"always", SyncAlways, false},
		{"", SyncAlways, false},
		{"interval", SyncInterval, false},
		{"none", SyncNone, false},
		{"fsync-maybe", SyncAlways, true},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SyncInterval.String() != "interval" {
		t.Fatal("String round trip")
	}
}
