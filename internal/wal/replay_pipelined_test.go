package wal

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// TestReplayPipelinedMatchesReplay checks the pipelined variant is a
// drop-in: same records, same order, same after-filter, across segment
// rotations, at several pipeline depths.
func TestReplayPipelinedMatchesReplay(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for e := uint64(1); e <= 40; e++ {
		if err := l.Append(e, mkOps(e*100, int(e%7)+1)); err != nil {
			t.Fatalf("append %d: %v", e, err)
		}
	}
	for _, after := range []uint64{0, 17, 40} {
		wantEpochs, wantOps := collect(t, l, after)
		for _, depth := range []int{0, 1, 8} {
			var gotEpochs []uint64
			var gotOps [][]Op
			err := l.ReplayPipelined(after, depth, func(epoch uint64, ops []Op) error {
				gotEpochs = append(gotEpochs, epoch)
				gotOps = append(gotOps, ops) // pipelined batches own their slices
				return nil
			})
			if err != nil {
				t.Fatalf("pipelined replay (after=%d depth=%d): %v", after, depth, err)
			}
			if !reflect.DeepEqual(gotEpochs, wantEpochs) {
				t.Fatalf("after=%d depth=%d: epochs %v, want %v", after, depth, gotEpochs, wantEpochs)
			}
			if !reflect.DeepEqual(gotOps, wantOps) {
				t.Fatalf("after=%d depth=%d: ops diverge from Replay", after, depth)
			}
		}
	}
}

// TestReplayPipelinedConsumerError checks an fn error aborts the replay
// (decoder drained, no goroutine leak) and surfaces unchanged.
func TestReplayPipelinedConsumerError(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for e := uint64(1); e <= 20; e++ {
		if err := l.Append(e, mkOps(e, 2)); err != nil {
			t.Fatalf("append %d: %v", e, err)
		}
	}
	boom := errors.New("boom")
	seen := 0
	err = l.ReplayPipelined(0, 4, func(epoch uint64, ops []Op) error {
		seen++
		if epoch == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("consumer error: got %v, want %v", err, boom)
	}
	if seen != 5 {
		t.Fatalf("consumer ran %d times, want 5 (abort at the failing batch)", seen)
	}
}

// TestReplayPipelinedBatchesRetainable checks each delivered ops slice
// is independently owned — the property Replay's reused buffer lacks
// and the pipeline's hand-off requires.
func TestReplayPipelinedBatchesRetainable(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := make(map[uint64][]Op)
	for e := uint64(1); e <= 10; e++ {
		ops := mkOps(e*10, 3)
		want[e] = ops
		if err := l.Append(e, ops); err != nil {
			t.Fatalf("append %d: %v", e, err)
		}
	}
	got := make(map[uint64][]Op)
	if err := l.ReplayPipelined(0, 2, func(epoch uint64, ops []Op) error {
		got[epoch] = ops // retained past return on purpose
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	for e, ops := range want {
		if !reflect.DeepEqual(got[e], ops) {
			t.Fatalf("epoch %d: retained batch mutated: %v want %v", e, got[e], ops)
		}
	}
	_ = fmt.Sprintf("%v", got) // keep the slices live across the check
}
