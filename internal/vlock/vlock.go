// Package vlock implements the per-vertex reader-writer lock table shared
// by all three TuFast modes (paper §IV-E). The lock word is designed for
// cheap HTM "subscription": exclusive transitions bump a version stamp so
// an H-mode transaction can record Stamp(v) when it first touches v and
// later verify the stamp is unchanged — shared-count churn does not
// invalidate the stamp, so concurrent readers never abort each other.
package vlock

import (
	"fmt"
	"sync/atomic"
)

// Lock word layout (64 bits):
//
//	63............48 47.............16 15..............0
//	owner (tid+1)    version stamp     shared count
//
// owner != 0  => exclusively held by thread owner-1.
// version     => incremented on every exclusive acquire and release.
// shared count=> number of shared holders.
const (
	sharedMask = uint64(0xFFFF)
	verShift   = 16
	verMask    = uint64(0xFFFFFFFF) << verShift
	ownerShift = 48
	ownerMask  = uint64(0xFFFF) << ownerShift
	stampMask  = ownerMask | verMask
	maxShared  = 0xFFFF
	verIncr    = uint64(1) << verShift
)

// NoThread is the owner field value meaning "unowned".
const NoThread = 0

// Table is a fixed-size array of vertex locks. Thread ids must be in
// [0, 65534].
type Table struct {
	words []atomic.Uint64
}

// NewTable creates a lock table covering n vertices.
func NewTable(n int) *Table {
	if n <= 0 {
		panic(fmt.Sprintf("vlock: non-positive table size %d", n))
	}
	return &Table{words: make([]atomic.Uint64, n)}
}

// Len returns the number of vertices covered.
func (t *Table) Len() int { return len(t.words) }

// Stamp returns the subscription stamp of v's lock: the owner and version
// fields. An H-mode transaction that read v aborts if the stamp changes,
// i.e. if any exclusive acquisition or release happened since.
func (t *Table) Stamp(v uint32) uint64 {
	return t.words[v].Load() & stampMask
}

// StampFree reports whether stamp s describes an exclusively-unlocked
// vertex.
func StampFree(s uint64) bool { return s&ownerMask == 0 }

// Raw returns the raw lock word (tests and the deadlock detector use it).
func (t *Table) Raw(v uint32) uint64 { return t.words[v].Load() }

// ExclusiveOwner returns the thread currently holding v exclusively and
// true, or 0 and false if v is not exclusively held.
func (t *Table) ExclusiveOwner(v uint32) (int, bool) {
	w := t.words[v].Load()
	o := w >> ownerShift
	if o == 0 {
		return 0, false
	}
	return int(o - 1), true
}

// SharedCount returns the number of shared holders of v.
func (t *Table) SharedCount(v uint32) int {
	return int(t.words[v].Load() & sharedMask)
}

// TryShared attempts a non-blocking shared acquisition of v.
func (t *Table) TryShared(v uint32) bool {
	for {
		w := t.words[v].Load()
		if w&ownerMask != 0 {
			return false
		}
		if w&sharedMask == maxShared {
			return false // saturated; treat as contention
		}
		if t.words[v].CompareAndSwap(w, w+1) {
			return true
		}
	}
}

// ReleaseShared releases one shared hold of v.
func (t *Table) ReleaseShared(v uint32) {
	for {
		w := t.words[v].Load()
		if w&sharedMask == 0 {
			panic(fmt.Sprintf("vlock: shared underflow on vertex %d", v))
		}
		if t.words[v].CompareAndSwap(w, w-1) {
			return
		}
	}
}

// TryExclusive attempts a non-blocking exclusive acquisition of v by
// thread tid. It bumps the version stamp, invalidating subscriptions.
func (t *Table) TryExclusive(v uint32, tid int) bool {
	for {
		w := t.words[v].Load()
		if w&ownerMask != 0 || w&sharedMask != 0 {
			return false
		}
		nw := (w + verIncr) & ^ownerMask & ^sharedMask
		nw |= uint64(tid+1) << ownerShift
		if t.words[v].CompareAndSwap(w, nw) {
			return true
		}
	}
}

// ReleaseExclusive releases v, which must be exclusively held by tid.
// The version stamp bumps again so subscriptions taken during the hold
// cannot validate.
func (t *Table) ReleaseExclusive(v uint32, tid int) {
	for {
		w := t.words[v].Load()
		if w>>ownerShift != uint64(tid+1) {
			panic(fmt.Sprintf("vlock: thread %d releasing vertex %d owned by %d", tid, v, int(w>>ownerShift)-1))
		}
		nw := (w + verIncr) & verMask // clear owner, keep bumped version
		if t.words[v].CompareAndSwap(w, nw) {
			return
		}
	}
}

// UpgradeToExclusive attempts to convert one shared hold by tid into an
// exclusive hold. It succeeds only if tid's hold is the sole shared hold.
func (t *Table) UpgradeToExclusive(v uint32, tid int) bool {
	for {
		w := t.words[v].Load()
		if w&ownerMask != 0 || w&sharedMask != 1 {
			return false
		}
		nw := (w + verIncr) & ^sharedMask
		nw |= uint64(tid+1) << ownerShift
		if t.words[v].CompareAndSwap(w, nw) {
			return true
		}
	}
}

// StampAfterExclusive computes the stamp the lock word of a vertex will
// carry immediately after thread tid acquires it exclusively, given the
// stamp pre observed before the acquisition. TuFast's H mode uses it to
// keep a read subscription valid across its own lock acquisition.
func StampAfterExclusive(pre uint64, tid int) uint64 {
	return ((pre + verIncr) & verMask) | uint64(tid+1)<<ownerShift
}
