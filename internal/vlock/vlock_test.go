package vlock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSharedCompatibility(t *testing.T) {
	tb := NewTable(8)
	if !tb.TryShared(1) || !tb.TryShared(1) {
		t.Fatal("shared locks must be compatible")
	}
	if tb.SharedCount(1) != 2 {
		t.Fatalf("count=%d", tb.SharedCount(1))
	}
	if tb.TryExclusive(1, 0) {
		t.Fatal("exclusive granted over shared holders")
	}
	tb.ReleaseShared(1)
	tb.ReleaseShared(1)
	if !tb.TryExclusive(1, 0) {
		t.Fatal("exclusive refused on free lock")
	}
}

func TestExclusiveExcludesEverything(t *testing.T) {
	tb := NewTable(8)
	if !tb.TryExclusive(2, 3) {
		t.Fatal("acquire failed")
	}
	if tb.TryShared(2) || tb.TryExclusive(2, 4) {
		t.Fatal("lock not exclusive")
	}
	owner, held := tb.ExclusiveOwner(2)
	if !held || owner != 3 {
		t.Fatalf("owner=%d held=%v", owner, held)
	}
	tb.ReleaseExclusive(2, 3)
	if _, held := tb.ExclusiveOwner(2); held {
		t.Fatal("still held after release")
	}
}

func TestStampBumpsOnExclusiveTransitions(t *testing.T) {
	tb := NewTable(8)
	s0 := tb.Stamp(5)
	if !StampFree(s0) {
		t.Fatal("fresh stamp not free")
	}
	tb.TryExclusive(5, 1)
	s1 := tb.Stamp(5)
	if s1 == s0 || StampFree(s1) {
		t.Fatalf("acquire did not move stamp: %x -> %x", s0, s1)
	}
	tb.ReleaseExclusive(5, 1)
	s2 := tb.Stamp(5)
	if s2 == s1 || s2 == s0 || !StampFree(s2) {
		t.Fatalf("release stamp wrong: %x %x %x", s0, s1, s2)
	}
}

func TestStampUnaffectedByShared(t *testing.T) {
	tb := NewTable(8)
	s0 := tb.Stamp(5)
	tb.TryShared(5)
	tb.TryShared(5)
	tb.ReleaseShared(5)
	if tb.Stamp(5) != s0 {
		t.Fatal("shared churn moved the stamp (H readers would abort each other)")
	}
	tb.ReleaseShared(5)
}

func TestStampAfterExclusive(t *testing.T) {
	tb := NewTable(8)
	pre := tb.Stamp(5)
	if !tb.TryExclusive(5, 7) {
		t.Fatal("acquire failed")
	}
	if got, want := tb.Stamp(5), StampAfterExclusive(pre, 7); got != want {
		t.Fatalf("predicted stamp %x, actual %x", want, got)
	}
}

func TestUpgrade(t *testing.T) {
	tb := NewTable(8)
	tb.TryShared(3)
	if !tb.UpgradeToExclusive(3, 2) {
		t.Fatal("sole-holder upgrade failed")
	}
	if owner, held := tb.ExclusiveOwner(3); !held || owner != 2 {
		t.Fatal("upgrade did not take exclusive")
	}
	tb.ReleaseExclusive(3, 2)

	tb.TryShared(3)
	tb.TryShared(3)
	if tb.UpgradeToExclusive(3, 2) {
		t.Fatal("upgrade with two holders must fail")
	}
	tb.ReleaseShared(3)
	tb.ReleaseShared(3)
}

func TestReleaseSharedUnderflowPanics(t *testing.T) {
	tb := NewTable(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.ReleaseShared(0)
}

func TestReleaseExclusiveWrongOwnerPanics(t *testing.T) {
	tb := NewTable(8)
	tb.TryExclusive(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.ReleaseExclusive(0, 2)
}

// TestMutualExclusionStress: an exclusive-protected counter must not
// lose updates.
func TestMutualExclusionStress(t *testing.T) {
	tb := NewTable(4)
	var counter int
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				for !tb.TryExclusive(0, tid) {
				}
				counter++
				tb.ReleaseExclusive(0, tid)
			}
		}(g)
	}
	wg.Wait()
	if counter != goroutines*each {
		t.Fatalf("lost updates: %d want %d", counter, goroutines*each)
	}
}

// TestSharedCountNeverNegativeProperty: arbitrary interleavings of
// acquire/release sequences keep the count consistent.
func TestSharedCountNeverNegativeProperty(t *testing.T) {
	f := func(ops []bool) bool {
		tb := NewTable(1)
		held := 0
		for _, acquire := range ops {
			if acquire {
				if tb.TryShared(0) {
					held++
				}
			} else if held > 0 {
				tb.ReleaseShared(0)
				held--
			}
			if tb.SharedCount(0) != held {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
