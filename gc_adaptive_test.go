package tufast

import (
	"context"
	"testing"
)

// TestGCMinChainWords pins the load-adaptive threshold curve: 1 at
// quiescence (compact every non-empty chain, the historical behavior),
// growing with per-vertex append pressure, capped at 256.
func TestGCMinChainWords(t *testing.T) {
	cases := []struct {
		ops  uint64
		n    int
		want int
	}{
		{0, 1000, 1},          // quiet: everything compacts
		{999, 1000, 1},        // sub-one op per vertex rounds down to quiet
		{2000, 1000, 7},       // 2 ops/vertex → skip chains under 7 words
		{10_000, 1000, 31},    // 10 ops/vertex
		{1_000_000, 100, 256}, // burst: capped, never a permanent no-op
		{5, 0, 1},             // degenerate vertex count
	}
	for _, c := range cases {
		if got := gcMinChainWords(c.ops, c.n); got != c.want {
			t.Errorf("gcMinChainWords(%d, %d) = %d, want %d", c.ops, c.n, c.want, c.want)
		}
	}
}

// TestGCAdaptiveSkip drives the threshold end to end: a pass right
// after a heavy stream skips the small chains, and the next (quiet)
// pass reclaims them.
func TestGCAdaptiveSkip(t *testing.T) {
	const n = 64
	g, err := BuildGraph(n, nil, false)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sys := NewSystem(g, Options{Threads: 2, SpaceWords: DynSpaceWords(g, 4096)})
	d := NewDynGraph(sys)

	// Two batches per edge — insert then delete — leave each touched
	// vertex a chain that is pure garbage below the watermark: the
	// superseded insert plus a tombstone matching the (absent) base.
	var ins, del []StreamOp
	for i := uint32(1); i <= 10; i++ {
		ins = append(ins, StreamOp{Time: uint64(i), U: i, V: i + 20})
		del = append(del, StreamOp{Time: uint64(i), U: i, V: i + 20, Del: true})
	}
	if _, err := d.ApplyStream(ins, StreamOptions{}); err != nil {
		t.Fatalf("insert batch: %v", err)
	}
	if _, err := d.ApplyStream(del, StreamOptions{}); err != nil {
		t.Fatalf("delete batch: %v", err)
	}

	// Simulate a heavy interval: enough pressure to cap the threshold
	// at 256 words, far above these one-block chains.
	d.gcAppended.Store(uint64(n) * 1000)
	rewritten, err := d.GCCtx(context.Background(), 0)
	if err != nil {
		t.Fatalf("busy pass: %v", err)
	}
	if rewritten != 0 {
		t.Fatalf("busy pass rewrote %d chains, want 0 (threshold should skip small chains)", rewritten)
	}

	// The busy pass drained the counter, so this pass runs quiet and
	// must reclaim all 10 garbage chains.
	rewritten, err = d.GCCtx(context.Background(), 0)
	if err != nil {
		t.Fatalf("quiet pass: %v", err)
	}
	if rewritten != 10 {
		t.Fatalf("quiet pass rewrote %d chains, want 10", rewritten)
	}
}
