// mvcc_view_test.go — the multi-version oracle: an epoch-pinned view
// must reproduce that epoch's exact topology, bit for bit, while
// concurrent mutation batches keep committing around it. Phase 1
// applies half the stream sequentially and snapshots per-epoch truth
// via replay; phase 2 turns 8 mutator workers loose on the rest while
// the main goroutine cross-examines pinned views against the frozen
// truth — under -race this is the whole lock-free-read safety
// argument in executable form.
package tufast_test

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"tufast"
	"tufast/internal/dyngraph"
)

// truthAt replays base+ops[:k] into per-vertex sorted adjacency — the
// exact topology a view pinned at the epoch covering k ops must show.
func truthAt(st *dyngraph.Stream, ops []tufast.StreamOp, n int) [][]uint32 {
	ps := &dyngraph.Stream{N: n, Undirected: true, Base: st.Base, Ops: ops}
	adj := make([][]uint32, n)
	for _, e := range ps.ReplayEdges() {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for _, a := range adj {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	}
	return adj
}

// checkView samples random vertices of v against the truth adjacency:
// neighborhoods, degrees, and edge membership both ways. Called from
// the test goroutine only.
func checkView(t *testing.T, v *tufast.GraphView, adj [][]uint32, rng *rand.Rand, samples int) {
	t.Helper()
	n := len(adj)
	var buf []uint32
	for i := 0; i < samples; i++ {
		u := uint32(rng.Intn(n))
		buf = v.Neighbors(u, buf[:0])
		got := append([]uint32(nil), buf...)
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		want := adj[u]
		if !(len(got) == 0 && len(want) == 0) && !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d: Neighbors(%d) = %v, want %v", v.Epoch(), u, got, want)
		}
		if d := v.Degree(u); d != len(want) {
			t.Fatalf("epoch %d: Degree(%d) = %d, want %d", v.Epoch(), u, d, len(want))
		}
		if len(want) > 0 {
			w := want[rng.Intn(len(want))]
			if !v.HasEdge(u, w) {
				t.Fatalf("epoch %d: HasEdge(%d,%d) = false, want true", v.Epoch(), u, w)
			}
		}
		w := uint32(rng.Intn(n))
		has := false
		for _, x := range want {
			if x == w {
				has = true
				break
			}
		}
		if v.HasEdge(u, w) != has {
			t.Fatalf("epoch %d: HasEdge(%d,%d) = %v, want %v", v.Epoch(), u, w, !has, has)
		}
	}
}

func TestMVCCViewOracle(t *testing.T) {
	n, baseE, nOps, batch := 2000, 15_000, 100_000, 2_000
	if testing.Short() {
		nOps, batch = 24_000, 1_000
	}
	g, st := makeOracleStream(n, baseE, nOps, 7)
	_, d := newDynFixture(t, g, 0, tufast.Options{
		Threads: 8,
		// Every effective op appends a stamped entry that GC is not
		// running to reclaim, so size the overlay for the whole stream
		// with headroom.
		SpaceWords: tufast.DynSpaceWords(g, 2*nOps),
	})

	half := len(st.Ops) / 2 / batch * batch

	// Phase 1: sequential batches. prefixAt maps each observed epoch to
	// the op-prefix it covers; an ineffective batch leaves the epoch in
	// place and overwrites with a longer prefix, which replays to the
	// same graph by definition.
	prefixAt := map[uint64]int{0: 0}
	for i := 0; i < half; i += batch {
		stats, err := d.ApplyStream(st.Ops[i:i+batch], tufast.StreamOptions{Window: 512})
		if err != nil {
			t.Fatalf("phase-1 ApplyStream: %v", err)
		}
		prefixAt[stats.Epoch] = i + batch
	}
	var p1epochs []uint64
	for e := range prefixAt {
		p1epochs = append(p1epochs, e)
	}
	sort.Slice(p1epochs, func(i, j int) bool { return p1epochs[i] < p1epochs[j] })
	// Sample ~8 epochs (always epoch 0 and the newest) and freeze truth.
	step := len(p1epochs)/8 + 1
	var sampled []uint64
	for i := 0; i < len(p1epochs); i += step {
		sampled = append(sampled, p1epochs[i])
	}
	if last := p1epochs[len(p1epochs)-1]; sampled[len(sampled)-1] != last {
		sampled = append(sampled, last)
	}
	truths := map[uint64][][]uint32{}
	for _, e := range sampled {
		truths[e] = truthAt(st, st.Ops[:prefixAt[e]], n)
	}

	// A view pinned now must still show this exact topology after the
	// full phase-2 barrage has committed over it.
	pinned := d.View()
	defer pinned.Close()

	// Phase 2: 8 mutator workers drain the remaining batches while the
	// main goroutine cross-examines the phase-1 epochs through fresh
	// pinned views. Effective batches record their (epoch, op-range) so
	// phase-2 epochs can be replayed afterwards.
	type committedBatch struct {
		epoch  uint64
		lo, hi int
	}
	var (
		mu        sync.Mutex
		committed []committedBatch
	)
	jobs := make(chan [2]int, (len(st.Ops)-half)/batch+1)
	for i := half; i < len(st.Ops); i += batch {
		hi := i + batch
		if hi > len(st.Ops) {
			hi = len(st.Ops)
		}
		jobs <- [2]int{i, hi}
	}
	close(jobs)
	errCh := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				stats, err := d.ApplyStream(st.Ops[j[0]:j[1]], tufast.StreamOptions{Window: 512})
				if err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				if stats.Inserted+stats.Removed > 0 {
					mu.Lock()
					committed = append(committed, committedBatch{stats.Epoch, j[0], j[1]})
					mu.Unlock()
				}
			}
		}()
	}
	mutDone := make(chan struct{})
	go func() { wg.Wait(); close(mutDone) }()

	rng := rand.New(rand.NewSource(42))
	for sampling := true; sampling; {
		select {
		case <-mutDone:
			sampling = false
		default:
		}
		for _, e := range sampled {
			v := d.ViewAt(e)
			checkView(t, v, truths[e], rng, 40)
			v.Close()
		}
	}
	select {
	case err := <-errCh:
		t.Fatalf("phase-2 ApplyStream: %v", err)
	default:
	}

	// The long-pinned view never drifted.
	checkView(t, pinned, truths[sampled[len(sampled)-1]], rng, 200)

	// Phase-2 epochs: batches took their epochs in commit order, so the
	// topology at a committed epoch is the phase-1 prefix plus every
	// batch that committed at or below it (ineffective batches replay
	// as no-ops either way). Verify the first, a middle, and the last.
	sort.Slice(committed, func(i, j int) bool { return committed[i].epoch < committed[j].epoch })
	if len(committed) == 0 {
		t.Fatal("phase 2 committed no effective batches")
	}
	ops := append([]tufast.StreamOp(nil), st.Ops[:half]...)
	checks := map[uint64][][]uint32{}
	picks := []int{0, len(committed) / 2, len(committed) - 1}
	for i, b := range committed {
		ops = append(ops, st.Ops[b.lo:b.hi]...)
		for _, p := range picks {
			if i == p {
				checks[b.epoch] = truthAt(st, ops, n)
			}
		}
	}
	for e, adj := range checks {
		v := d.ViewAt(e)
		checkView(t, v, adj, rng, 200)
		v.Close()
	}
}
