package tufast_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"tufast"
)

func TestBuildGraphAndAccessors(t *testing.T) {
	g, err := tufast.BuildGraph(4, []tufast.EdgePair{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 2 {
		t.Fatalf("|V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Undirected() {
		t.Fatal("directed build wrong")
	}
	gu, err := tufast.BuildGraph(4, []tufast.EdgePair{{U: 0, V: 1}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !gu.Undirected() || gu.Degree(1) != 1 {
		t.Fatal("undirected build wrong")
	}
	if _, err := tufast.BuildGraph(2, []tufast.EdgePair{{U: 0, V: 9}}, false); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestGenerators(t *testing.T) {
	if g := tufast.GeneratePowerLaw(2000, 10_000, 2.1, 3); g.MaxDegree() < 20 {
		t.Fatal("power law lacks a hub")
	}
	if g := tufast.GenerateRMAT(10, 8, 3); g.NumVertices() != 1024 {
		t.Fatal("rmat size wrong")
	}
	if g := tufast.GenerateUniform(100, 5, 1); g.NumVertices() != 100 {
		t.Fatal("uniform size wrong")
	}
	if g := tufast.GenerateGrid(5, 7); g.NumVertices() != 35 {
		t.Fatal("grid size wrong")
	}
}

func TestUndirect(t *testing.T) {
	g, _ := tufast.BuildGraph(3, []tufast.EdgePair{{U: 0, V: 1}, {U: 1, V: 2}}, false)
	u := g.Undirect()
	if !u.Undirected() || u.Degree(1) != 2 {
		t.Fatalf("undirect wrong: deg(1)=%d", u.Degree(1))
	}
	if u.Undirect() != u {
		t.Fatal("Undirect of undirected graph should be identity")
	}
}

func TestGraphBinaryRoundTripFile(t *testing.T) {
	g := tufast.GeneratePowerLaw(500, 2000, 2.1, 5)
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := g.SaveBinary(path); err != nil {
		t.Fatal(err)
	}
	g2, err := tufast.LoadGraphBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Fatal("round trip mismatch")
	}
	if _, err := tufast.LoadGraphBinary(filepath.Join(t.TempDir(), "missing.bin")); !os.IsNotExist(err) {
		t.Fatalf("err=%v", err)
	}
}

func TestReadEdgeListGraph(t *testing.T) {
	g, err := tufast.ReadEdgeListGraph(strings.NewReader("0 1\n1 2\n"), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || !g.Undirected() {
		t.Fatal("edge list parse wrong")
	}
}

func TestEdgeWeightDeterminism(t *testing.T) {
	if tufast.EdgeWeight(3, 9, 100) != tufast.EdgeWeight(3, 9, 100) {
		t.Fatal("weights not deterministic")
	}
	w := tufast.EdgeWeight(1, 2, 10)
	if w < 1 || w > 10 {
		t.Fatalf("weight %d out of range", w)
	}
}

func TestArraysAndFloats(t *testing.T) {
	g := tufast.GenerateUniform(64, 4, 1)
	sys := tufast.NewSystem(g, tufast.Options{Threads: 2})
	a := sys.NewVertexArray(7)
	if a.Len() != 64 || a.Get(10) != 7 {
		t.Fatal("vertex array init wrong")
	}
	a.SetFloat(3, 2.5)
	if a.GetFloat(3) != 2.5 {
		t.Fatal("float round trip wrong")
	}
	b := sys.NewArray(10)
	b.Set(9, 42)
	if b.Get(9) != 42 {
		t.Fatal("array set/get wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected out-of-range panic")
		}
	}()
	_ = b.Addr(10)
}

func TestTransactionalFloats(t *testing.T) {
	g := tufast.GenerateUniform(64, 4, 1)
	sys := tufast.NewSystem(g, tufast.Options{Threads: 2})
	a := sys.NewVertexArray(0)
	err := sys.Atomic(2, func(tx tufast.Tx) error {
		tx.WriteFloat(5, a.Addr(5), 3.75)
		if got := tx.ReadFloat(5, a.Addr(5)); got != 3.75 {
			t.Errorf("read-own-float %f", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.GetFloat(5) != 3.75 {
		t.Fatal("float write lost")
	}
}

func TestForEachQueuedDrains(t *testing.T) {
	g := tufast.GenerateUniform(256, 4, 2)
	sys := tufast.NewSystem(g, tufast.Options{Threads: 4})
	visited := sys.NewVertexArray(0)
	q := sys.NewQueue()
	q.Push(0)
	var pushes atomic.Uint64
	err := sys.ForEachQueued(q, func(tx tufast.Tx, v uint32) error {
		if tx.Read(v, visited.Addr(v)) == 1 {
			return nil
		}
		tx.Write(v, visited.Addr(v), 1)
		for _, u := range g.Neighbors(v) {
			if tx.Read(u, visited.Addr(u)) == 0 {
				pushes.Add(1)
				q.Push(u)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		if visited.Get(v) == 1 {
			count++
		}
	}
	if count == 0 || q.Len() != 0 {
		t.Fatalf("visited=%d qlen=%d", count, q.Len())
	}
}

func TestPQOrdering(t *testing.T) {
	g := tufast.GenerateUniform(16, 2, 1)
	sys := tufast.NewSystem(g, tufast.Options{Threads: 1})
	pq := sys.NewPQ()
	pq.Push(3, 30)
	pq.Push(1, 10)
	pq.Push(2, 20)
	v, ok := pq.Pop()
	if !ok || v != 1 {
		t.Fatalf("pop %d, want 1 (lowest priority first)", v)
	}
	if pq.Len() != 2 {
		t.Fatalf("len=%d", pq.Len())
	}
}

func TestStatsSnapshotSurface(t *testing.T) {
	g := tufast.GenerateUniform(64, 4, 1)
	sys := tufast.NewSystem(g, tufast.Options{Threads: 2})
	a := sys.NewVertexArray(0)
	_ = sys.Atomic(2, func(tx tufast.Tx) error {
		tx.Write(0, a.Addr(0), 1)
		return nil
	})
	st := sys.StatsSnapshot()
	if st.Commits != 1 || st.Writes != 1 {
		t.Fatalf("stats %+v", st)
	}
	if len(st.Mode) != 5 {
		t.Fatalf("mode classes %d", len(st.Mode))
	}
	if st.CurrentPeriod <= 0 {
		t.Fatal("period not exposed")
	}
	sys.ResetStats()
	if sys.StatsSnapshot().Commits != 0 {
		t.Fatal("reset failed")
	}
}

func TestOptionsVariants(t *testing.T) {
	g := tufast.GenerateUniform(128, 4, 1)
	for _, opt := range []tufast.Options{
		{Threads: 2, Deadlock: tufast.DeadlockDetect},
		{Threads: 2, Deadlock: tufast.DeadlockPreventOrdered},
		{Threads: 2, Deadlock: tufast.DeadlockNoWait},
		{Threads: 2, StaticPeriod: true, PeriodInit: 200},
		{Threads: 2, HRetries: 2},
	} {
		sys := tufast.NewSystem(g, opt)
		ctr := sys.NewArray(1)
		err := sys.ForEachVertex(func(tx tufast.Tx, v uint32) error {
			tx.Write(0, ctr.Addr(0), tx.Read(0, ctr.Addr(0))+1)
			return nil
		})
		if err != nil {
			t.Fatalf("opts %+v: %v", opt, err)
		}
		if got := ctr.Get(0); got != 128 {
			t.Fatalf("opts %+v: counter=%d", opt, got)
		}
	}
}

func TestWorkerReuse(t *testing.T) {
	g := tufast.GenerateUniform(64, 4, 1)
	sys := tufast.NewSystem(g, tufast.Options{Threads: 2})
	w1 := sys.Worker()
	sys.Release(w1)
	w2 := sys.Worker()
	if w1 != w2 {
		t.Fatal("released worker not reused")
	}
	sys.Release(w2)
}

func TestGraphEdgeListWrite(t *testing.T) {
	g, _ := tufast.BuildGraph(3, []tufast.EdgePair{{U: 0, V: 1}, {U: 1, V: 2}}, false)
	var buf bytes.Buffer
	g2, err := tufast.ReadEdgeListGraph(strings.NewReader("0 1\n1 2\n"), 3, false)
	if err != nil {
		t.Fatal(err)
	}
	_ = buf
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("mismatch")
	}
}
