// Package tufast is a lightweight parallelization library for graph
// analytics, reproducing "TuFast: A Lightweight Parallelization Library
// for Graph Analytics" (Shang, Yu, Zhang — ICDE 2019).
//
// Users write sequential-looking per-vertex code and mark shared accesses
// with transactional Read/Write; tufast runs the code concurrently with
// full serializability, routing every transaction by its size hint
// through a three-mode hybrid transactional memory:
//
//   - small transactions (the power-law majority) run in a single
//     emulated hardware transaction (H mode);
//   - medium transactions run optimistically with hardware-monitored
//     segments (O mode);
//   - giant transactions take per-vertex locks (L mode).
//
// A minimal program (greedy maximal matching, the paper's Figure 1):
//
//	g := tufast.GeneratePowerLaw(100_000, 2_000_000, 2.1, 1)
//	sys := tufast.NewSystem(g, tufast.Options{})
//	match := sys.NewVertexArray(tufast.None)
//	sys.ForEachVertex(func(tx tufast.Tx, v uint32) error {
//		if tx.Read(v, match.Addr(v)) != tufast.None {
//			return nil
//		}
//		for _, u := range g.Neighbors(v) {
//			if tx.Read(u, match.Addr(u)) == tufast.None {
//				tx.Write(v, match.Addr(v), uint64(u))
//				tx.Write(u, match.Addr(u), uint64(v))
//				break
//			}
//		}
//		return nil
//	})
package tufast

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tufast/internal/core"
	"tufast/internal/deadlock"
	"tufast/internal/graph"
	"tufast/internal/mem"
	"tufast/internal/sched"
	"tufast/internal/worklist"
)

// None is the conventional "no value" word for vertex properties
// (matching, parents, component ids): the all-ones word, which is never a
// valid vertex id.
const None = ^uint64(0)

// TxPanicError is returned by Atomic / ForEachVertex / ForEachQueued when
// a user transaction function panics. The runtime guarantees the panicking
// transaction was fully unwound first: buffered writes discarded, in-place
// L-mode writes rolled back, and every vertex lock released — the System
// remains healthy and subsequent transactions commit normally. Value holds
// the original panic payload and Stack the stack trace at recovery; use
// errors.As to detect it.
type TxPanicError = sched.TxPanicError

// Addr is a word address inside a System's shared memory space.
type Addr = uint64

// DeadlockPolicy selects how L-mode (lock-based) transactions avoid
// deadlock.
type DeadlockPolicy int

const (
	// DeadlockDetect runs waits-for-graph cycle detection (the paper's
	// default).
	DeadlockDetect DeadlockPolicy = iota
	// DeadlockPreventOrdered assumes neighbor iteration in id order and
	// disables detection (the paper's §IV-E optimization).
	DeadlockPreventOrdered
	// DeadlockNoWait aborts and restarts instead of blocking.
	DeadlockNoWait
)

// Options tunes a System. The zero value gives the paper's defaults.
type Options struct {
	// Threads is the parallelism of ForEachVertex / ForEachQueued
	// (default: GOMAXPROCS).
	Threads int
	// SpaceWords overrides the shared-space size in 8-byte words
	// (default: 24 words per vertex plus slack).
	SpaceWords int
	// HRetries bounds H-mode retries (default 8).
	HRetries int
	// PeriodInit is the O-mode segment length before adaptation
	// (default 1000).
	PeriodInit int
	// AdaptivePeriod toggles the §IV-D controller (default on;
	// StaticPeriod disables it).
	StaticPeriod bool
	// Deadlock selects the L-mode policy.
	Deadlock DeadlockPolicy
	// HMaxHint and OMaxHint override the §IV-B routing thresholds: a
	// transaction with size hint ≤ HMaxHint tries H mode first, one
	// above OMaxHint goes straight to L mode, and anything between
	// starts optimistic (defaults: the HTM word capacity and 8× it).
	// Lowering them makes small graphs exercise the full H/O/L spread,
	// which streaming workloads use to route mutations by live degree.
	HMaxHint int
	OMaxHint int
}

// System is a TuFast runtime bound to one graph: a shared memory space
// for vertex properties and the three-mode hybrid TM scheduling all
// transactional access to it.
type System struct {
	g    *Graph
	sp   *mem.Space
	core *core.System

	threads int

	// Worker recycling: thread ids are bound to workers for their
	// lifetime (vertex lock ownership is per-id), so workers are kept on
	// an explicit free list rather than a sync.Pool, which could drop
	// and re-mint them past the id budget.
	//tufast:lockorder 10
	wmu     sync.Mutex
	free    []*Worker
	created int
}

// NewSystem creates a runtime for g.
func NewSystem(g *Graph, opt Options) *System {
	n := g.NumVertices()
	if opt.Threads <= 0 {
		opt.Threads = runtime.GOMAXPROCS(0)
	}
	if opt.SpaceWords <= 0 {
		opt.SpaceWords = 24*(n+8) + 4096
	}
	cfg := core.Config{
		HRetries:       opt.HRetries,
		PeriodInit:     opt.PeriodInit,
		AdaptivePeriod: !opt.StaticPeriod,
		HMaxHint:       opt.HMaxHint,
		OMaxHint:       opt.OMaxHint,
	}
	switch opt.Deadlock {
	case DeadlockDetect:
		cfg.Deadlock = deadlock.Detect
	case DeadlockPreventOrdered:
		cfg.Deadlock = deadlock.PreventOrdered
	case DeadlockNoWait:
		cfg.Deadlock = deadlock.NoWait
	}
	sp := mem.NewSpace(opt.SpaceWords)
	s := &System{
		g:       g,
		sp:      sp,
		core:    core.New(sp, n, cfg),
		threads: opt.Threads,
	}
	return s
}

// Graph returns the graph the system was built for.
func (s *System) Graph() *Graph { return s.g }

// Threads returns the configured parallelism.
func (s *System) Threads() int { return s.threads }

// NewVertexArray allocates one word of shared property state per vertex,
// all initialized to init.
func (s *System) NewVertexArray(init uint64) VertexArray {
	a := s.NewArray(s.g.NumVertices())
	if init != 0 {
		for i := 0; i < a.n; i++ {
			s.sp.Store(a.base+mem.Addr(i), init)
		}
	}
	return VertexArray{Array: a}
}

// NewArray allocates n shared words (zeroed), line-aligned.
func (s *System) NewArray(n int) Array {
	base := s.sp.AllocLineAligned(n)
	return Array{base: base, n: n, sp: s.sp}
}

// Worker returns a per-goroutine execution context. Workers are pooled;
// Release returns one to the pool.
func (s *System) Worker() *Worker {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if n := len(s.free); n > 0 {
		w := s.free[n-1]
		s.free = s.free[:n-1]
		return w
	}
	id := s.created
	s.created++
	return &Worker{sys: s, inner: s.core.Worker(id)}
}

// Release returns a worker obtained from Worker to the pool.
//
// A worker whose last transaction was unwound by a panic (its Atomic call
// never returned) may still carry in-flight state: held vertex locks,
// an open undo log, escalated backoff. Pooling such a worker as-is would
// poison a later transaction, so Release first asks the scheduler to
// verifiably reset it (releasing leftover locks and rolling back in-place
// writes); if the scheduler cannot, the worker is discarded — its thread
// id is retired rather than recycled into a corrupted context.
func (s *System) Release(w *Worker) {
	if w.busy {
		a, ok := w.inner.(sched.Abandoner)
		if !ok || !a.AbandonInFlight() {
			return // discard: never pool a worker with in-flight state
		}
		w.busy = false
	}
	s.wmu.Lock()
	s.free = append(s.free, w)
	s.wmu.Unlock()
}

// Atomic runs fn as one serializable transaction on a pooled worker.
// sizeHint is the paper's BEGIN(size) hint — approximately how many
// shared words fn will touch (a vertex's degree, usually); 0 = unknown.
//
// If fn panics, the transaction is rolled back (no lock is leaked, no
// write becomes visible) and the panic is returned as a *TxPanicError.
func (s *System) Atomic(sizeHint int, fn func(tx Tx) error) error {
	return s.AtomicCtx(context.Background(), sizeHint, fn)
}

// AtomicCtx is Atomic with cancellation: once ctx is cancelled the
// transaction stops retrying — and, in L mode, stops waiting for vertex
// locks — rolls back, and returns ctx.Err(). A transaction that already
// entered its commit phase commits.
func (s *System) AtomicCtx(ctx context.Context, sizeHint int, fn func(tx Tx) error) error {
	w := s.Worker()
	defer s.Release(w)
	return w.AtomicCtx(ctx, sizeHint, fn)
}

// ForEachVertex runs fn once for every vertex as its own transaction,
// in parallel, using the vertex degree as the size hint (the paper's
// parallel_for + BEGIN(degree[v]) idiom). The first user error stops
// the sweep (best effort) and is returned; a panicking fn stops it with
// a *TxPanicError.
func (s *System) ForEachVertex(fn func(tx Tx, v uint32) error) error {
	return s.ForEachVertexCtx(context.Background(), fn)
}

// ForEachVertexCtx is ForEachVertex with cancellation: ctx is checked at
// every chunk boundary, between vertices, and inside lock waits, so a
// cancelled sweep returns ctx.Err() promptly instead of draining the
// remaining vertices.
func (s *System) ForEachVertexCtx(ctx context.Context, fn func(tx Tx, v uint32) error) error {
	n := s.g.NumVertices()
	cancellable := ctx.Done() != nil
	var firstErr atomic.Value
	worklist.RangeCtx(ctx, n, s.threads, 256, func(tid, lo, hi int) {
		// Label the goroutine so CPU profiles attribute samples to the
		// sweep and the worker slot (pprof -tagfocus / -taghide).
		defer pprof.SetGoroutineLabels(ctx)
		pprof.SetGoroutineLabels(pprof.WithLabels(ctx, pprof.Labels(
			"tufast", "foreach_vertex", "worker", strconv.Itoa(tid))))
		w := s.Worker()
		defer s.Release(w)
		for v := lo; v < hi; v++ {
			if firstErr.Load() != nil {
				return
			}
			if cancellable && ctx.Err() != nil {
				return
			}
			vid := uint32(v)
			hint := s.g.Degree(vid)*2 + 2
			if err := w.AtomicCtx(ctx, hint, func(tx Tx) error { return fn(tx, vid) }); err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// ForEachQueued drains queue q with the configured parallelism, running
// fn for each polled vertex as its own transaction (the Figure 3 driver:
// pass a FIFO Queue for Bellman-Ford or a PQ for SPFA via the Source
// interface). Workers exit when the queue stays empty and all workers
// are idle.
//
// Pushing into q from inside fn happens before the transaction's writes
// become visible (and also on attempts that later abort and retry), so a
// popped vertex can observe pre-push state and a push is not a promise
// that its triggering write committed. Write fn so that a stale or
// spurious wakeup is harmless — re-check the activating condition
// transactionally and do nothing if it no longer holds, as the
// tufast/algorithms implementations do.
func (s *System) ForEachQueued(q Source, fn func(tx Tx, v uint32) error) error {
	return s.ForEachQueuedCtx(context.Background(), q, fn)
}

// ForEachQueuedCtx is ForEachQueued with cancellation: every worker polls
// ctx between transactions and while idle, so a cancelled drain returns
// ctx.Err() promptly even when the queue never empties.
func (s *System) ForEachQueuedCtx(ctx context.Context, q Source, fn func(tx Tx, v uint32) error) error {
	cancellable := ctx.Done() != nil
	var firstErr atomic.Value
	var idle atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < s.threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pprof.SetGoroutineLabels(pprof.WithLabels(ctx, pprof.Labels(
				"tufast", "foreach_queued", "worker", strconv.Itoa(t))))
			w := s.Worker()
			defer s.Release(w)
			// Quiesce invariant: EVERY exit path leaves this worker's
			// idle contribution permanently counted (the success exit
			// keeps the increment it just made; error, panic, and
			// cancellation exits add one on the way out). The remaining
			// workers can therefore always reach the all-idle threshold
			// and terminate, no matter in which order and for which
			// reason their peers left.
			idleSpins := 0
			for {
				if firstErr.Load() != nil {
					idle.Add(1)
					return
				}
				if cancellable {
					if err := ctx.Err(); err != nil {
						firstErr.CompareAndSwap(nil, err)
						idle.Add(1)
						return
					}
				}
				v, ok := q.Pop()
				if ok {
					idleSpins = 0
				}
				if !ok {
					// Leave only when every worker is idle and the queue
					// is empty — then nobody can still push.
					n := idle.Add(1)
					if int(n) >= s.threads && q.Len() == 0 {
						return
					}
					idleSpins++
					if idleSpins > 64 {
						time.Sleep(50 * time.Microsecond)
					} else {
						runtime.Gosched()
					}
					idle.Add(-1)
					continue
				}
				hint := s.g.Degree(v)*2 + 2
				if err := w.AtomicCtx(ctx, hint, func(tx Tx) error { return fn(tx, v) }); err != nil {
					firstErr.CompareAndSwap(nil, err)
					idle.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// Source is the queue interface ForEachQueued drains; *Queue (FIFO) and
// *PQ (priority) both satisfy it.
type Source interface {
	Pop() (uint32, bool)
	Len() int
}

// Worker is a per-goroutine transaction executor.
type Worker struct {
	sys   *System
	inner sched.Worker
	// busy is set for the duration of an Atomic call; it stays set only
	// when a panic unwound the call, marking in-flight state for Release.
	busy bool
}

// Atomic runs fn as one serializable transaction.
func (w *Worker) Atomic(sizeHint int, fn func(tx Tx) error) error {
	return w.AtomicCtx(context.Background(), sizeHint, fn)
}

// AtomicCtx runs fn as one serializable transaction that stops retrying
// (and stops waiting for locks) with ctx.Err() once ctx is cancelled.
func (w *Worker) AtomicCtx(ctx context.Context, sizeHint int, fn func(tx Tx) error) error {
	w.busy = true
	wrapped := func(t sched.Tx) error { return fn(Tx{t: t}) }
	var err error
	if cw, ok := w.inner.(sched.CtxWorker); ok {
		err = cw.RunCtx(ctx, sizeHint, wrapped)
	} else {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				w.busy = false
				return cerr
			}
		}
		err = w.inner.Run(sizeHint, wrapped)
	}
	w.busy = false
	return err
}

// Tx is the transactional handle: every shared read/write names the
// vertex the address belongs to (the lock and conflict granularity).
type Tx struct {
	t sched.Tx
}

// Read returns the shared word at addr, owned by vertex v.
func (tx Tx) Read(v uint32, addr Addr) uint64 { return tx.t.Read(v, mem.Addr(addr)) }

// Write stores val to the shared word at addr, owned by vertex v.
func (tx Tx) Write(v uint32, addr Addr, val uint64) { tx.t.Write(v, mem.Addr(addr), val) }

// ReadFloat reads a float64 property.
func (tx Tx) ReadFloat(v uint32, addr Addr) float64 { return mem.Float(tx.Read(v, addr)) }

// WriteFloat writes a float64 property.
func (tx Tx) WriteFloat(v uint32, addr Addr, val float64) { tx.Write(v, addr, mem.Word(val)) }

// Array is a block of shared words.
type Array struct {
	base mem.Addr
	n    int
	sp   *mem.Space
}

// Addr returns the address of element i.
func (a Array) Addr(i int) Addr {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("tufast: array index %d out of range [0,%d)", i, a.n))
	}
	return Addr(a.base) + Addr(i)
}

// Len returns the element count.
func (a Array) Len() int { return a.n }

// Get reads element i non-transactionally (for initialization and for
// reading results after all workers finished).
func (a Array) Get(i int) uint64 { return a.sp.Load(mem.Addr(a.Addr(i))) }

// Set writes element i non-transactionally (initialization only: the
// write does not interact with concurrent transactions).
func (a Array) Set(i int, val uint64) { a.sp.Store(mem.Addr(a.Addr(i)), val) }

// GetFloat reads element i as float64.
func (a Array) GetFloat(i int) float64 { return mem.Float(a.Get(i)) }

// SetFloat writes element i as float64.
func (a Array) SetFloat(i int, val float64) { a.Set(i, mem.Word(val)) }

// VertexArray is an Array with exactly one word per vertex.
type VertexArray struct {
	Array
}

// Addr returns the address of vertex v's word.
func (a VertexArray) Addr(v uint32) Addr { return a.Array.Addr(int(v)) }

// Get reads vertex v's word non-transactionally.
func (a VertexArray) Get(v uint32) uint64 { return a.Array.Get(int(v)) }

// Set writes vertex v's word non-transactionally.
func (a VertexArray) Set(v uint32, val uint64) { a.Array.Set(int(v), val) }

// GetFloat reads vertex v's word as float64.
func (a VertexArray) GetFloat(v uint32) float64 { return a.Array.GetFloat(int(v)) }

// SetFloat writes vertex v's word as float64.
func (a VertexArray) SetFloat(v uint32, val float64) { a.Array.SetFloat(int(v), val) }

// NewQueue creates a FIFO vertex queue sized for the system's threads.
func (s *System) NewQueue() *Queue { return (*Queue)(worklist.NewQueue(s.threads)) }

// NewPQ creates a priority vertex queue sized for the system's threads.
func (s *System) NewPQ() *PQ { return (*PQ)(worklist.NewPQ(s.threads)) }

// Queue is a concurrent FIFO of vertex ids.
type Queue worklist.Queue

// Push appends v.
func (q *Queue) Push(v uint32) { (*worklist.Queue)(q).Push(v) }

// Pop removes one id (ok=false if empty).
func (q *Queue) Pop() (uint32, bool) { return (*worklist.Queue)(q).Pop() }

// Len returns the approximate size.
func (q *Queue) Len() int { return (*worklist.Queue)(q).Len() }

// PQ is a concurrent priority queue of vertex ids.
type PQ worklist.PQ

// Push inserts v with a priority (lower pops first).
func (q *PQ) Push(v uint32, prio uint64) { (*worklist.PQ)(q).Push(v, prio) }

// Pop removes a minimal-priority vertex.
func (q *PQ) Pop() (uint32, bool) {
	v, _, ok := (*worklist.PQ)(q).Pop()
	return v, ok
}

// Len returns the approximate size.
func (q *PQ) Len() int { return (*worklist.PQ)(q).Len() }

// Graph is a frozen compressed-sparse-row graph: once built, its
// topology never changes, so accessors are safe to call from any
// goroutine with no synchronization. To mutate edges, layer a DynGraph
// over it with NewDynGraph — the Graph stays intact as the overlay's
// base (and as everyone else's view).
type Graph struct {
	csr *graph.CSR
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.csr.NumVertices() }

// NumEdges returns the number of stored arcs. An undirected graph
// stores each edge in both directions, so this is twice the edge
// count there.
func (g *Graph) NumEdges() int { return g.csr.NumEdges() }

// Degree returns v's out-degree (arc count, like NumEdges).
func (g *Graph) Degree(v uint32) int { return g.csr.Degree(v) }

// Neighbors returns v's out-neighbors in ascending id order. The slice
// aliases the graph's internal storage — it stays valid for the
// graph's lifetime and must not be modified.
func (g *Graph) Neighbors(v uint32) []uint32 { return g.csr.Neighbors(v) }

// MaxDegree returns the largest degree.
func (g *Graph) MaxDegree() int { return g.csr.MaxDegree() }

// Undirected reports whether the edge set was symmetrized.
func (g *Graph) Undirected() bool { return g.csr.Undirected() }

// EdgeWeight derives the deterministic weight of edge (u, v) in
// [1, maxW] used by the weighted algorithms.
func EdgeWeight(u, v uint32, maxW uint32) uint32 { return graph.WeightOf(u, v, maxW) }

// CSR exposes the internal graph to sibling packages inside this module.
func (g *Graph) CSR() *graph.CSR { return g.csr }

// WrapCSR wraps an internal CSR as a public Graph (used by cmd/ and
// bench code inside this module).
func WrapCSR(c *graph.CSR) *Graph { return &Graph{csr: c} }
