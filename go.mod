module tufast

go 1.22
