#!/bin/sh
# check.sh — the repo's pre-merge gate: formatting, vet, the
# transaction- and concurrency-contract analyzer suite (tufastcheck,
# with -strict-ignores), and the test suite under the race detector
# (short profile). Run from the repo root or
# anywhere inside it; `make check` is an alias and `make lint` runs the
# analyzer stage alone.
set -eu

# Fail fast, and clearly, if the toolchain is missing rather than
# letting the first stage die with a cryptic "not found".
for tool in go gofmt; do
    if ! command -v "$tool" >/dev/null 2>&1; then
        echo "check.sh: required tool '$tool' not found in PATH" >&2
        echo "check.sh: install the Go toolchain (go 1.22+) and retry" >&2
        exit 2
    fi
done

cd "$(dirname "$0")/.."

stage_start=0
begin() {
    echo "== $1 =="
    stage_start=$(date +%s)
}
end() {
    echo "ok ($(($(date +%s) - stage_start))s)"
}

begin "gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
end

begin "go vet"
go vet ./...
end

begin "tufastcheck"
# -strict-ignores also fails on stale //tufast:ignore directives, so
# suppressions are deleted when the finding they excused is gone.
go run ./cmd/tufastcheck -strict-ignores ./...
end

# The serving path (daemon, load generator, server package) is covered
# by ./... above; this stage re-runs vet + the contract analyzers over
# it by name so a failure points straight at the serving subsystem.
begin "serving path (vet + tufastcheck)"
go vet ./internal/server ./cmd/tufastd ./cmd/tufast-loadgen ./algorithms
go run ./cmd/tufastcheck ./internal/server ./cmd/tufastd ./cmd/tufast-loadgen ./algorithms
end

begin "go test -race (short)"
go test -race -short ./...
end

# The crash matrix is the executable form of the durability argument
# (kill-and-restart at every awkward instant, recovered topology
# cross-examined against the ReplayEdges oracle over the acknowledged
# batches). It runs inside ./... above; re-run it by name so a
# recovery regression fails with the matrix's own diagnostics.
begin "crash recovery matrix (race)"
go test -race -short -run 'TestCrashRecovery' ./internal/server
end

# The tenancy suite is the executable form of the multi-graph
# isolation argument (per-tenant topology oracles under concurrent
# cross-tenant mutation, quota 429s, and a three-graph kill-and-
# recover). It runs inside ./... above; re-run it by name so a tenancy
# regression fails with the suite's own diagnostics.
begin "multi-graph tenancy suite (race)"
go test -race -short -run 'TestTenancy' ./internal/server
end

# The MVCC view oracle is the executable form of the lock-free-read
# safety argument (pinned views cross-examined against replayed truth
# while 8 mutator workers commit around them). It runs inside ./...
# above; re-run it by name so a multi-version visibility regression
# fails with the oracle's own diagnostics, not a package-level FAIL.
begin "mvcc view oracle (race)"
go test -race -short -run 'TestMVCCViewOracle' .
end

echo "All checks passed."
