#!/bin/sh
# check.sh — the repo's pre-merge gate: formatting, vet, and the test
# suite under the race detector (short profile). Run from the repo root
# or anywhere inside it; `make check` is an alias.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "ok"

echo "== go vet =="
go vet ./...
echo "ok"

echo "== go test -race (short) =="
go test -race -short ./...

echo "All checks passed."
