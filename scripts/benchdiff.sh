#!/usr/bin/env bash
# Compare the two most recent benchmark snapshots (BENCH_*.json) and
# print per-workload throughput deltas. Non-blocking: exits 0 when
# fewer than two snapshots exist, so CI can run it unconditionally.
set -euo pipefail
cd "$(dirname "$0")/.."

mapfile -t snaps < <(ls BENCH_*.json 2>/dev/null | sort -V | tail -2)
if [ "${#snaps[@]}" -lt 2 ]; then
  echo "benchdiff: need two BENCH_*.json snapshots, found ${#snaps[@]} — nothing to compare"
  exit 0
fi

exec go run ./cmd/benchdiff "${snaps[0]}" "${snaps[1]}"
