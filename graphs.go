package tufast

import (
	"io"

	"tufast/internal/graph"
	"tufast/internal/graph/gen"
)

// EdgePair is one directed edge for BuildGraph.
type EdgePair struct {
	U, V uint32
}

// BuildGraph constructs a graph over n vertices from an edge list.
// Adjacency is sorted and de-duplicated; self-loops are dropped. With
// undirected=true every edge is stored in both directions.
func BuildGraph(n int, edges []EdgePair, undirected bool) (*Graph, error) {
	es := make([]graph.Edge, len(edges))
	for i, e := range edges {
		es[i] = graph.Edge{U: e.U, V: e.V}
	}
	c, err := graph.Build(n, es, graph.BuildOptions{Symmetrize: undirected})
	if err != nil {
		return nil, err
	}
	return &Graph{csr: c}, nil
}

// GeneratePowerLaw generates a power-law (Chung-Lu) graph with n
// vertices, ~m edges and degree exponent alpha (social networks: ~2.1),
// deterministic under seed.
func GeneratePowerLaw(n, m int, alpha float64, seed uint64) *Graph {
	return &Graph{csr: gen.PowerLaw(n, m, alpha, seed)}
}

// GenerateRMAT generates an R-MAT graph with 2^scale vertices and
// edgeFactor arcs per vertex (the standard web-crawl stand-in).
func GenerateRMAT(scale, edgeFactor int, seed uint64) *Graph {
	return &Graph{csr: gen.RMAT(scale, edgeFactor, seed)}
}

// GenerateUniform generates a graph where every vertex has exactly
// degree d with uniform random neighbors.
func GenerateUniform(n, d int, seed uint64) *Graph {
	return &Graph{csr: gen.Uniform(n, d, seed)}
}

// GenerateGrid generates a rows x cols 4-neighbor lattice (road-like).
func GenerateGrid(rows, cols int) *Graph {
	return &Graph{csr: gen.Grid(rows, cols)}
}

// Undirect returns a new symmetrized graph (every arc mirrored, then
// de-duplicated); g itself is unchanged. If g is already undirected it
// is returned as-is, not copied.
func (g *Graph) Undirect() *Graph {
	if g.csr.Undirected() {
		return g
	}
	n := g.NumVertices()
	edges := make([]graph.Edge, 0, g.NumEdges())
	for v := uint32(0); int(v) < n; v++ {
		for _, u := range g.Neighbors(v) {
			edges = append(edges, graph.Edge{U: v, V: u})
		}
	}
	return &Graph{csr: graph.MustBuild(n, edges, graph.BuildOptions{Symmetrize: true})}
}

// LoadGraphBinary reads a graph saved with SaveBinary. The round trip
// is lossless: topology, vertex count (including trailing isolated
// vertices) and the Undirected flag all survive.
func LoadGraphBinary(path string) (*Graph, error) {
	c, err := graph.LoadBinary(path)
	if err != nil {
		return nil, err
	}
	return &Graph{csr: c}, nil
}

// SaveBinary writes the graph in the compact binary format read by
// LoadGraphBinary (and by cmd/tufast via -graph).
func (g *Graph) SaveBinary(path string) error { return g.csr.SaveBinary(path) }

// ReadEdgeListGraph parses a whitespace-separated "u v" edge list
// (SNAP-style; '#'/'%' comments). n forces the vertex count when > 0.
func ReadEdgeListGraph(r io.Reader, n int, undirected bool) (*Graph, error) {
	c, err := graph.ReadEdgeList(r, n, graph.BuildOptions{Symmetrize: undirected})
	if err != nil {
		return nil, err
	}
	return &Graph{csr: c}, nil
}
