package tufast_test

import (
	"errors"
	"sync"
	"testing"

	"tufast"
)

// TestMatchingSerializable runs the paper's Figure 1 maximal matching on
// a power-law graph and checks the matching invariants that only hold
// under serializable execution: match is symmetric (match[match[v]] == v)
// and every matched pair is an edge.
func TestMatchingSerializable(t *testing.T) {
	g := tufast.GeneratePowerLaw(20_000, 200_000, 2.1, 42).Undirect()
	sys := tufast.NewSystem(g, tufast.Options{Threads: 8})
	match := sys.NewVertexArray(tufast.None)

	err := sys.ForEachVertex(func(tx tufast.Tx, v uint32) error {
		if tx.Read(v, match.Addr(v)) != tufast.None {
			return nil
		}
		for _, u := range g.Neighbors(v) {
			if tx.Read(u, match.Addr(u)) == tufast.None {
				tx.Write(v, match.Addr(v), uint64(u))
				tx.Write(u, match.Addr(u), uint64(v))
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ForEachVertex: %v", err)
	}

	matched := 0
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		m := match.Get(v)
		if m == tufast.None {
			continue
		}
		matched++
		u := uint32(m)
		if back := match.Get(u); back != uint64(v) {
			t.Fatalf("asymmetric match: match[%d]=%d but match[%d]=%d", v, u, u, back)
		}
		found := false
		for _, nb := range g.Neighbors(v) {
			if nb == u {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("matched non-edge (%d,%d)", v, u)
		}
	}
	if matched == 0 {
		t.Fatal("no vertex matched at all")
	}
	st := sys.StatsSnapshot()
	if st.Commits == 0 {
		t.Fatal("no transactions committed")
	}
	t.Logf("matched=%d commits=%d aborts=%d mode=%v", matched, st.Commits, st.Aborts, st.Mode)
}

// TestCounterAtomicity hammers one shared counter from many goroutines;
// any lost update means broken isolation.
func TestCounterAtomicity(t *testing.T) {
	g := tufast.GenerateUniform(64, 4, 7)
	sys := tufast.NewSystem(g, tufast.Options{Threads: 8})
	ctr := sys.NewArray(1)

	const goroutines, perG = 8, 2_000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := sys.Worker()
			defer sys.Release(w)
			for j := 0; j < perG; j++ {
				err := w.Atomic(2, func(tx tufast.Tx) error {
					cur := tx.Read(0, ctr.Addr(0))
					tx.Write(0, ctr.Addr(0), cur+1)
					return nil
				})
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := ctr.Get(0); got != goroutines*perG {
		t.Fatalf("lost updates: counter=%d want %d", got, goroutines*perG)
	}
}

// TestUserAbortDiscardsEffects verifies a user error rolls back every
// write of the transaction.
func TestUserAbortDiscardsEffects(t *testing.T) {
	g := tufast.GenerateUniform(64, 4, 7)
	sys := tufast.NewSystem(g, tufast.Options{Threads: 2})
	arr := sys.NewVertexArray(0)
	boom := errors.New("boom")

	err := sys.Atomic(4, func(tx tufast.Tx) error {
		tx.Write(1, arr.Addr(1), 111)
		tx.Write(2, arr.Addr(2), 222)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v want boom", err)
	}
	if arr.Get(1) != 0 || arr.Get(2) != 0 {
		t.Fatalf("aborted writes visible: %d %d", arr.Get(1), arr.Get(2))
	}
}

// TestLargeTransactionRoutesToL checks a transaction touching far more
// than the HTM capacity still commits (via O escalation or direct L).
func TestLargeTransactionRoutesToL(t *testing.T) {
	g := tufast.GenerateUniform(40_000, 2, 3)
	sys := tufast.NewSystem(g, tufast.Options{Threads: 4})
	arr := sys.NewVertexArray(0)

	n := g.NumVertices()
	sweep := func(tx tufast.Tx) error {
		for v := 0; v < n; v++ {
			cur := tx.Read(uint32(v), arr.Addr(uint32(v)))
			tx.Write(uint32(v), arr.Addr(uint32(v)), cur+1)
		}
		return nil
	}

	// A medium body (above HTM capacity, hinted below the O ceiling) must
	// escape H mode yet still commit — O mode chops it into segments.
	medium := func(tx tufast.Tx) error {
		for v := 0; v < 8000; v++ {
			cur := tx.Read(uint32(v), arr.Addr(uint32(v)))
			tx.Write(uint32(v), arr.Addr(uint32(v)), cur+1)
		}
		return nil
	}
	if err := sys.Atomic(16000, medium); err != nil {
		t.Fatalf("medium transaction: %v", err)
	}
	// A hint beyond the O ceiling must be routed straight to locking.
	if err := sys.Atomic(1<<21, sweep); err != nil {
		t.Fatalf("huge transaction: %v", err)
	}

	for v := 0; v < n; v++ {
		want := uint64(1)
		if v < 8000 {
			want = 2
		}
		if arr.Get(uint32(v)) != want {
			t.Fatalf("vertex %d = %d, want %d", v, arr.Get(uint32(v)), want)
		}
	}
	st := sys.StatsSnapshot()
	if st.Mode["H"].Transactions != 0 {
		t.Fatalf("oversized transactions must not commit in H: %+v", st.Mode)
	}
	if got := st.Mode["O"].Transactions + st.Mode["O+"].Transactions + st.Mode["O2L"].Transactions; got != 1 {
		t.Fatalf("expected exactly one O-family commit, got %+v", st.Mode)
	}
	if st.Mode["L"].Transactions != 1 {
		t.Fatalf("expected the giant transaction in class L, got %+v", st.Mode)
	}
}
