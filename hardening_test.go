package tufast_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tufast"
	"tufast/internal/sched"
)

// lHint is a size hint large enough that the router sends the transaction
// straight to L mode (> OMaxHint = 8 * htm.CapacityWords).
const lHint = 1 << 20

// assertNoVertexLocks inspects the shared vertex-lock table and fails if
// any lock survived: that is the lock-leak the panic contract forbids.
func assertNoVertexLocks(t *testing.T, s *tufast.System) {
	t.Helper()
	locks := s.Core().Locks()
	for v := 0; v < locks.Len(); v++ {
		if owner, held := locks.ExclusiveOwner(uint32(v)); held {
			t.Fatalf("vertex %d exclusively locked by tid %d after unwind", v, owner)
		}
		if n := locks.SharedCount(uint32(v)); n != 0 {
			t.Fatalf("vertex %d has %d shared holders after unwind", v, n)
		}
	}
}

// TestPanicInLModeLeavesNoLockHeld is the headline acceptance test: a
// TxFunc that panics after locking and writing in L mode must leave no
// vertex lock held, no write visible, and the System able to commit
// subsequent transactions.
func TestPanicInLModeLeavesNoLockHeld(t *testing.T) {
	g, err := tufast.BuildGraph(8, []tufast.EdgePair{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}}, true)
	if err != nil {
		t.Fatal(err)
	}
	s := tufast.NewSystem(g, tufast.Options{Threads: 4})
	arr := s.NewVertexArray(0)

	if err := s.Atomic(lHint, func(tx tufast.Tx) error {
		tx.Write(2, arr.Addr(2), 20)
		tx.Write(4, arr.Addr(4), 40)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	err = s.Atomic(lHint, func(tx tufast.Tx) error {
		tx.Write(2, arr.Addr(2), 999) // exclusive lock + in-place write
		tx.Write(4, arr.Addr(4), 999)
		panic("bug in user analytics code")
	})
	var pe *tufast.TxPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *TxPanicError", err)
	}
	if pe.Value != "bug in user analytics code" {
		t.Fatalf("panic value = %v", pe.Value)
	}

	assertNoVertexLocks(t, s)
	if got := arr.Get(2); got != 20 {
		t.Fatalf("vertex 2 = %d, want rollback to 20", got)
	}
	if got := arr.Get(4); got != 40 {
		t.Fatalf("vertex 4 = %d, want rollback to 40", got)
	}

	// The system keeps committing afterwards — including on the same
	// (pooled, now-recycled) worker.
	for i := 0; i < 8; i++ {
		if err := s.Atomic(lHint, func(tx tufast.Tx) error {
			tx.Write(2, arr.Addr(2), uint64(100+i))
			return nil
		}); err != nil {
			t.Fatalf("post-panic commit %d: %v", i, err)
		}
	}
	if got := arr.Get(2); got != 107 {
		t.Fatalf("vertex 2 = %d, want 107", got)
	}
	if st := s.StatsSnapshot(); st.Panics != 1 {
		t.Fatalf("Stats.Panics = %d, want 1", st.Panics)
	}
}

// TestWorkerReuseAfterPanicAndError exercises the explicit-worker pooling
// path: a worker whose transactions panicked or errored must come back
// clean from Release/Worker.
func TestWorkerReuseAfterPanicAndError(t *testing.T) {
	g := tufast.GenerateUniform(64, 4, 1)
	s := tufast.NewSystem(g, tufast.Options{Threads: 4})
	arr := s.NewVertexArray(0)
	userErr := errors.New("user abort")

	for round := 0; round < 16; round++ {
		w := s.Worker()
		// Panic in H mode (small hint) and in L mode (huge hint).
		hint := 8
		if round%2 == 1 {
			hint = lHint
		}
		err := w.Atomic(hint, func(tx tufast.Tx) error {
			tx.Write(1, arr.Addr(1), 999)
			panic(fmt.Sprintf("round %d", round))
		})
		var pe *tufast.TxPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("round %d: err = %v, want TxPanicError", round, err)
		}
		if err := w.Atomic(hint, func(tx tufast.Tx) error {
			return userErr
		}); err != userErr {
			t.Fatalf("round %d: err = %v, want userErr", round, err)
		}
		// The same worker must still commit.
		if err := w.Atomic(hint, func(tx tufast.Tx) error {
			tx.Write(1, arr.Addr(1), uint64(round))
			return nil
		}); err != nil {
			t.Fatalf("round %d: commit after panic/error: %v", round, err)
		}
		s.Release(w)
		assertNoVertexLocks(t, s)
		if got := arr.Get(1); got != uint64(round) {
			t.Fatalf("round %d: vertex 1 = %d", round, got)
		}
	}
}

// TestInjectedCommitPanicThenRelease injects a panic into the L-mode
// commit window — the one place the panic contract deliberately does NOT
// recover (commit code runs outside the attempt). The panic escapes
// Atomic with locks held; Release must then refuse to pool the worker
// as-is and instead verifiably reset it, leaving the system healthy.
func TestInjectedCommitPanicThenRelease(t *testing.T) {
	g := tufast.GenerateUniform(64, 4, 1)
	s := tufast.NewSystem(g, tufast.Options{Threads: 4})
	arr := s.NewVertexArray(0)

	for _, mode := range []string{"L", "H"} {
		hint := 8
		if mode == "L" {
			hint = lHint
		}
		fi := sched.NewFaultInjector(sched.FaultSpec{Mode: mode, Op: "commit", Kind: sched.FaultPanic})
		s.Core().SetFaultInjector(fi)

		w := s.Worker()
		var recovered any
		func() {
			defer func() { recovered = recover() }()
			_ = w.Atomic(hint, func(tx tufast.Tx) error {
				tx.Write(3, arr.Addr(3), 555)
				return nil
			})
		}()
		if recovered == nil {
			t.Fatalf("%s: injected commit panic did not escape", mode)
		}
		if p, ok := recovered.(sched.InjectedPanic); !ok || p.Mode != mode || p.Op != "commit" {
			t.Fatalf("%s: recovered %#v", mode, recovered)
		}
		if fi.Fired() != 1 {
			t.Fatalf("%s: injector fired %d times", mode, fi.Fired())
		}
		s.Core().SetFaultInjector(nil)

		// Release the poisoned worker: it must be abandoned (locks
		// reclaimed, undo rolled back) before pooling.
		s.Release(w)
		assertNoVertexLocks(t, s)
		if got := arr.Get(3); got != 0 {
			t.Fatalf("%s: vertex 3 = %d, want rollback to 0", mode, got)
		}
		if err := s.Atomic(hint, func(tx tufast.Tx) error {
			tx.Write(3, arr.Addr(3), 7)
			return nil
		}); err != nil {
			t.Fatalf("%s: commit after abandoned release: %v", mode, err)
		}
		if got := arr.Get(3); got != 7 {
			t.Fatalf("%s: vertex 3 = %d, want 7", mode, got)
		}
		arr.Set(3, 0)
	}
}

// TestInjectedCommitAbortRetries checks the abort-kind commit fault is
// invisible to the caller: the attempt fails its commit, rolls back, and
// the retry commits.
func TestInjectedCommitAbortRetries(t *testing.T) {
	g := tufast.GenerateUniform(64, 4, 1)
	s := tufast.NewSystem(g, tufast.Options{Threads: 4})
	arr := s.NewVertexArray(0)

	for _, tc := range []struct {
		mode string
		hint int
	}{{"H", 8}, {"O", 8192}, {"L", lHint}} {
		fi := sched.NewFaultInjector(sched.FaultSpec{Mode: tc.mode, Op: "commit", Kind: sched.FaultAbort})
		s.Core().SetFaultInjector(fi)
		if err := s.Atomic(tc.hint, func(tx tufast.Tx) error {
			tx.Write(5, arr.Addr(5), tx.Read(5, arr.Addr(5))+1)
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", tc.mode, err)
		}
		if fi.Fired() != 1 {
			t.Fatalf("%s: injector fired %d times, want 1", tc.mode, fi.Fired())
		}
		s.Core().SetFaultInjector(nil)
		assertNoVertexLocks(t, s)
	}
	if got := arr.Get(5); got != 3 {
		t.Fatalf("vertex 5 = %d, want 3 (each increment exactly once)", got)
	}
}

// TestForEachVertexCtxCancelPrompt is the sweep-cancellation acceptance
// test: once ctx is cancelled mid-sweep the driver must return ctx.Err()
// in well under 100ms instead of draining the remaining vertices.
func TestForEachVertexCtxCancelPrompt(t *testing.T) {
	g := tufast.GenerateUniform(100_000, 2, 1)
	s := tufast.NewSystem(g, tufast.Options{Threads: 4})
	arr := s.NewVertexArray(0)

	ctx, cancel := context.WithCancel(context.Background())
	var visited atomic.Int64
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := s.ForEachVertexCtx(ctx, func(tx tufast.Tx, v uint32) error {
		visited.Add(1)
		time.Sleep(20 * time.Microsecond) // make the full sweep take ~seconds
		tx.Write(v, arr.Addr(v), 1)
		return nil
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 105*time.Millisecond {
		t.Fatalf("cancelled sweep returned after %v, want < 100ms", elapsed)
	}
	if n := visited.Load(); n >= int64(g.NumVertices()) {
		t.Fatal("sweep ran to completion despite cancellation")
	}
	assertNoVertexLocks(t, s)
}

// TestForEachQueuedCtxCancelPrompt cancels a drain whose queue never
// empties (fn re-pushes every vertex): only cancellation can end it.
func TestForEachQueuedCtxCancelPrompt(t *testing.T) {
	g := tufast.GenerateUniform(1024, 4, 1)
	s := tufast.NewSystem(g, tufast.Options{Threads: 4})
	arr := s.NewVertexArray(0)
	q := s.NewQueue()
	for v := uint32(0); v < 64; v++ {
		q.Push(v)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := s.ForEachQueuedCtx(ctx, q, func(tx tufast.Tx, v uint32) error {
		tx.Write(v, arr.Addr(v), tx.Read(v, arr.Addr(v))+1)
		q.Push(v) // never lets the queue drain
		return nil
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 110*time.Millisecond {
		t.Fatalf("cancelled drain returned after %v, want < 100ms after cancel", elapsed)
	}
	assertNoVertexLocks(t, s)
}

// TestForEachQueuedErrorWhileOthersIdle is the quiesce-invariant
// regression: one worker's fn fails while every other worker idle-spins
// on an empty queue. Before the fix the erroring worker left without
// contributing to the idle count, so the spinners never reached the
// all-idle threshold and the call hung forever.
func TestForEachQueuedErrorWhileOthersIdle(t *testing.T) {
	g := tufast.GenerateUniform(256, 4, 1)
	s := tufast.NewSystem(g, tufast.Options{Threads: 8})
	q := s.NewQueue()
	q.Push(0) // exactly one item: one worker runs fn, seven idle-spin

	boom := errors.New("fn failed")
	done := make(chan error, 1)
	go func() {
		done <- s.ForEachQueued(q, func(tx tufast.Tx, v uint32) error {
			time.Sleep(50 * time.Millisecond) // let the other workers reach their idle spin
			return boom
		})
	}()
	select {
	case err := <-done:
		if err != boom {
			t.Fatalf("err = %v, want %v", err, boom)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ForEachQueued hung: error exit did not keep its idle contribution")
	}
	assertNoVertexLocks(t, s)
}

// TestMixedModeFaultHammer hammers all three modes concurrently with a
// mix of commits, user errors, and panics under the race detector, then
// checks exactly the committed increments landed.
func TestMixedModeFaultHammer(t *testing.T) {
	g := tufast.GenerateUniform(256, 4, 1)
	s := tufast.NewSystem(g, tufast.Options{Threads: 8})
	arr := s.NewVertexArray(0)

	const (
		goroutines = 8
		iters      = 300
	)
	hints := [3]int{8, 8192, lHint} // H, O, L routing
	var commits atomic.Uint64
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			w := s.Worker()
			defer s.Release(w)
			for it := 0; it < iters; it++ {
				v := uint32((gi*31 + it*7) % 4) // few vertices -> real conflicts
				hint := hints[(gi+it)%3]
				switch (gi + it) % 5 {
				case 0: // user error: no effect
					err := w.Atomic(hint, func(tx tufast.Tx) error {
						tx.Write(v, arr.Addr(v), tx.Read(v, arr.Addr(v))+1000)
						return errors.New("nope")
					})
					if err == nil {
						t.Error("user error swallowed")
						return
					}
				case 1: // panic: no effect, surfaces as TxPanicError
					err := w.Atomic(hint, func(tx tufast.Tx) error {
						tx.Write(v, arr.Addr(v), tx.Read(v, arr.Addr(v))+1000)
						panic("hammer")
					})
					var pe *tufast.TxPanicError
					if !errors.As(err, &pe) {
						t.Errorf("want TxPanicError, got %v", err)
						return
					}
				default: // commit: increments exactly once
					if err := w.Atomic(hint, func(tx tufast.Tx) error {
						tx.Write(v, arr.Addr(v), tx.Read(v, arr.Addr(v))+1)
						return nil
					}); err != nil {
						t.Errorf("commit failed: %v", err)
						return
					}
					commits.Add(1)
				}
			}
		}(gi)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var total uint64
	for v := uint32(0); v < 4; v++ {
		total += arr.Get(v)
	}
	if total != commits.Load() {
		t.Fatalf("sum of counters = %d, want %d committed increments (atomicity violated)", total, commits.Load())
	}
	assertNoVertexLocks(t, s)
	st := s.StatsSnapshot()
	if st.Panics == 0 || st.UserStops < st.Panics {
		t.Fatalf("stats: Panics=%d UserStops=%d", st.Panics, st.UserStops)
	}
}

// TestAtomicCtxCancelStopsRetry cancels a transaction stuck retrying
// against a persistent conflict (a foreign exclusive lock) — L-mode
// lock waits must observe the context.
func TestAtomicCtxCancelStopsRetry(t *testing.T) {
	g := tufast.GenerateUniform(64, 4, 1)
	s := tufast.NewSystem(g, tufast.Options{Threads: 4})
	arr := s.NewVertexArray(0)

	locks := s.Core().Locks()
	const blocker = 63 // foreign tid outside the pooled range in this test
	if !locks.TryExclusive(1, blocker) {
		t.Fatal("setup lock failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := s.AtomicCtx(ctx, lHint, func(tx tufast.Tx) error {
		tx.Write(1, arr.Addr(1), 1)
		return nil
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 110*time.Millisecond {
		t.Fatalf("cancel took %v", elapsed)
	}
	locks.ReleaseExclusive(1, blocker)
	if err := s.Atomic(lHint, func(tx tufast.Tx) error {
		tx.Write(1, arr.Addr(1), 2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	assertNoVertexLocks(t, s)
}
