package tufast

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tufast/internal/dyngraph"
	"tufast/internal/worklist"
)

// DynGraph is a mutable graph: the System's frozen base graph plus a
// transactional delta overlay living in the same shared space. Edges
// are mutated through Tx.AddEdge / Tx.RemoveEdge inside ordinary
// transactions, so a mutation is routed H/O/L by its size hint — which
// MutationHint derives from live degree, giving topology updates the
// same skew-aware treatment the paper gives property updates: leaf
// inserts commit in H mode, hub mutations take the L-mode lock path.
//
// The overlay allocates from the System's space; size it with
// DynSpaceWords. Quiescent methods (NeighborsNow, Compact, ...) are
// only exact when no mutator transaction is in flight.
type DynGraph struct {
	sys *System
	st  *dyngraph.Store

	inserted atomic.Uint64
	removed  atomic.Uint64
	noops    atomic.Uint64
	epoch    atomic.Uint64

	// batchMu serializes ApplyStream batches. Each batch stamps its
	// entries with epoch+1, so two concurrent batches must not share a
	// stamp — the second would leak half-committed entries into views
	// pinned at the first batch's epoch. Windows within a batch still
	// run across all the System's threads; only batch admission is
	// serial, which also gives each effective batch a distinct epoch.
	batchMu sync.Mutex
	// streaming is true while an ApplyStream batch holds batchMu. It
	// backs the best-effort assertion in Tx.AddEdge/RemoveEdge that no
	// direct edge mutation overlaps a batch — a direct mutation racing
	// the batch's end-of-stream stamp transition could commit an entry
	// under an epoch that pinned views already treat as sealed, and
	// break the per-target stamp monotonicity chain resolution relies
	// on (see Tx.AddEdge).
	streaming atomic.Bool

	// pinMu guards pins: epoch → number of live GraphViews pinned
	// there. The GC watermark is the minimum pinned epoch, computed
	// under the same mutex that View uses to read the epoch and insert
	// its pin, so GC can never collect underneath an in-flight pin.
	pinMu sync.Mutex
	pins  map[uint64]int

	// gcAppended counts effective stream ops since the last GC pass;
	// GCCtx drains it to scale its minimum-chain threshold with the
	// observed append rate (see gcMinChainWords).
	gcAppended atomic.Uint64
}

// NewDynGraph layers a mutable edge overlay over s's graph. The
// overlay's vertex arrays and edge blocks come out of s's space:
// construct the System with Options.SpaceWords ≥ DynSpaceWords for the
// mutation volume you expect.
func NewDynGraph(s *System) *DynGraph {
	return &DynGraph{sys: s, st: dyngraph.New(s.sp, s.g.csr), pins: make(map[uint64]int)}
}

// DynSpaceWords returns an Options.SpaceWords value sized for a System
// on g that also hosts a DynGraph absorbing up to mutations edge
// mutations (each undirected mutation is two arc mutations).
func DynSpaceWords(g *Graph, mutations int) int {
	arcs := mutations
	if g.Undirected() {
		arcs *= 2
	}
	n := g.NumVertices()
	return 24*(n+8) + 4096 + dyngraph.SpaceWords(n, arcs)
}

// System returns the runtime the overlay is bound to.
func (d *DynGraph) System() *System { return d.sys }

// Base returns the frozen graph underneath the overlay.
func (d *DynGraph) Base() *Graph { return d.sys.g }

// Undirected reports whether the base graph is undirected; Tx.AddEdge
// and Tx.RemoveEdge mutate both arcs of an undirected edge in one
// transaction.
func (d *DynGraph) Undirected() bool { return d.st.Undirected() }

// NumVertices returns |V| (fixed: the overlay mutates edges only).
func (d *DynGraph) NumVertices() int { return d.st.NumVertices() }

// LiveDegree returns v's current out-degree: exact at quiescence,
// advisory (one racy word read) while mutators run — fine for size
// hints and scheduling, not for invariants.
func (d *DynGraph) LiveDegree(v uint32) int { return d.st.LiveDegree(v) }

// NeighborsNow returns v's live out-neighbors, sorted, appended into
// buf[:0]. Quiescent: results are undefined while a mutator is in
// flight; inside transactions use Tx.NeighborsMut.
func (d *DynGraph) NeighborsNow(v uint32, buf []uint32) []uint32 {
	return d.st.NeighborsNow(v, buf)
}

// HasEdgeNow reports quiescently whether edge (u, v) is live; inside
// transactions use Tx.HasEdgeMut.
func (d *DynGraph) HasEdgeNow(u, v uint32) bool { return d.st.HasArcNow(u, v) }

// LiveArcs returns the quiescent live arc count (2× the edge count on
// undirected graphs).
func (d *DynGraph) LiveArcs() int { return d.st.LiveArcs() }

// MutationHint returns the transaction size hint for mutating edge
// (u, v): proportional to both endpoints' live degrees, so the §IV-B
// router sends leaf mutations to H mode and hub mutations to L mode.
func (d *DynGraph) MutationHint(u, v uint32) int { return d.st.Hint(u, v) }

// Compact freezes base+overlay into a fresh immutable Graph (sorted,
// de-duplicated, validated via the standard builder) for scan-heavy
// phases. Quiescent: all mutators must have drained.
func (d *DynGraph) Compact() (*Graph, error) {
	csr, err := d.st.Compact()
	if err != nil {
		return nil, err
	}
	return &Graph{csr: csr}, nil
}

// Epoch returns the graph's mutation epoch: it starts at 0 and
// increments once per ApplyStream batch that actually changed the
// topology (no-op-only batches leave it alone). A batch that fails
// partway — cancellation mid-stream, an OnEdge error — still bumps the
// epoch when any of its transactions committed a change, so partial
// application invalidates epoch-keyed consumers too. Consumers tag derived
// results (analytics caches, compacted snapshots) with the epoch they
// were computed at and treat a bumped epoch as invalidation. Direct
// Tx.AddEdge/RemoveEdge calls outside ApplyStream do not move the
// epoch; batch all serving-path mutations through ApplyStream.
func (d *DynGraph) Epoch() uint64 { return d.epoch.Load() }

// RestoreEpoch sets the mutation epoch to e, for boot-time recovery
// only: a daemon reloading a checkpoint taken at epoch e restores the
// counter before replaying the WAL tail, so replayed batches re-commit
// at the same epochs they originally published and epoch-keyed
// consumers (result caches, checkpoints, clients that recorded an ack
// epoch) stay consistent across the restart. The write stamp advances
// with it, exactly as an ApplyStream bump would have left it. Must be
// called before any transaction, batch, or view exists — it takes no
// lock and moves the visibility horizon.
func (d *DynGraph) RestoreEpoch(e uint64) {
	d.epoch.Store(e)
	d.st.SetWriteStamp(e + 1)
}

// MutationStats returns how many ApplyStream operations actually
// inserted an edge, actually removed one, and were no-ops (duplicate
// insert / missing delete).
func (d *DynGraph) MutationStats() (inserted, removed, noops uint64) {
	return d.inserted.Load(), d.removed.Load(), d.noops.Load()
}

// GraphView is a consistent, immutable read-only view of the graph
// pinned at a mutation epoch: every read resolves the overlay's
// multi-version chains to the state the pinned epoch saw, no matter
// how many batches commit afterwards. Views are safe to read from any
// goroutine while mutators run — no lock is taken on either side (see
// dyngraph.Store.NeighborsAt for the safety argument). A view holds a
// GC pin keeping its versions alive: Close it when done, or overlay
// garbage collection can never reclaim superseded entries.
type GraphView struct {
	d      *DynGraph
	epoch  uint64
	closed atomic.Bool
}

// View pins the current mutation epoch and returns its view. Mutations
// outside ApplyStream batches (direct Tx.AddEdge/RemoveEdge) are
// stamped past the current epoch and therefore invisible to views, as
// they are to Epoch — but only while they respect the contract on
// Tx.AddEdge: a direct mutation transaction overlapping a batch's
// stamp transition could commit under an already-pinnable epoch.
// Batch serving-path mutations through ApplyStream.
func (d *DynGraph) View() *GraphView {
	d.pinMu.Lock()
	e := d.epoch.Load()
	d.pins[e]++
	d.pinMu.Unlock()
	return &GraphView{d: d, epoch: e}
}

// ViewAt pins mutation epoch e and returns its view. Pinning an epoch
// at or below the GC watermark of a previous collection returns a view
// whose superseded versions may already be gone; serving planes pin
// the current epoch (View) and hand the view down, which is always
// safe.
func (d *DynGraph) ViewAt(e uint64) *GraphView {
	d.pinMu.Lock()
	d.pins[e]++
	d.pinMu.Unlock()
	return &GraphView{d: d, epoch: e}
}

// Close releases the view's GC pin. Reads after Close are still
// epoch-filtered but their versions may be collected underneath them;
// Close only once all readers of the view are done. Idempotent.
func (v *GraphView) Close() {
	if v.closed.Swap(true) {
		return
	}
	d := v.d
	d.pinMu.Lock()
	if d.pins[v.epoch]--; d.pins[v.epoch] <= 0 {
		delete(d.pins, v.epoch)
	}
	d.pinMu.Unlock()
}

// Epoch returns the mutation epoch the view is pinned at.
func (v *GraphView) Epoch() uint64 { return v.epoch }

// Neighbors returns u's out-neighbors as of the pinned epoch, sorted,
// appended into buf[:0].
func (v *GraphView) Neighbors(u uint32, buf []uint32) []uint32 {
	return v.d.st.NeighborsAt(u, v.epoch, buf)
}

// HasEdge reports whether edge (u, w) is live as of the pinned epoch.
func (v *GraphView) HasEdge(u, w uint32) bool {
	return v.d.st.HasArcAt(u, w, v.epoch)
}

// Degree returns u's out-degree as of the pinned epoch (an O(deg)
// chain resolve, unlike the advisory LiveDegree word).
func (v *GraphView) Degree(u uint32) int {
	var buf [8]uint32
	return len(v.d.st.NeighborsAt(u, v.epoch, buf[:0]))
}

// Arcs counts the live out-arcs as of the pinned epoch (2× the edge
// count on undirected graphs). O(V+E).
func (v *GraphView) Arcs() int {
	return v.d.st.ArcsAt(v.epoch)
}

// NumVertices returns |V|.
func (v *GraphView) NumVertices() int { return v.d.st.NumVertices() }

// Compact freezes the pinned epoch's topology into a fresh immutable
// Graph. Unlike DynGraph.Compact it is safe while mutators run.
func (v *GraphView) Compact() (*Graph, error) {
	csr, err := v.d.st.CompactAt(v.epoch)
	if err != nil {
		return nil, err
	}
	return &Graph{csr: csr}, nil
}

// GCCtx garbage-collects the overlay's multi-version chains: for every
// vertex it drops the versions no reader can observe anymore — entries
// superseded at or below the watermark, which is the minimum live
// pinned epoch (or the current epoch with nothing pinned). Rebuilt
// chains go into freshly allocated blocks (the arena never reuses, so
// frozen readers finish safely); GC therefore consumes headroom to
// reclaim reachability, and skips vertices — returning early — when
// the space has less than the rebuild size plus reserveWords left.
// Runs concurrently with mutators and readers: each per-vertex rebuild
// is one transaction owning that vertex. Returns the number of chains
// rewritten.
//
// The pass is load-adaptive: it drains the count of effective stream
// ops applied since the previous pass and skips chains smaller than
// gcMinChainWords of that rate. On a quiet graph the threshold is 1 —
// every non-empty chain compacts, the historical behavior — while
// under a heavy append stream the pass concentrates on the chains
// worth rewriting: each rebuild copies the survivors into fresh blocks
// (the arena never reuses), so compacting a tiny chain that mutators
// are about to regrow spends headroom and vertex-ownership conflicts
// to reclaim almost nothing.
func (d *DynGraph) GCCtx(ctx context.Context, reserveWords int) (int, error) {
	d.pinMu.Lock()
	keep := d.epoch.Load()
	for e := range d.pins {
		if e < keep {
			keep = e
		}
	}
	d.pinMu.Unlock()
	minWords := gcMinChainWords(d.gcAppended.Swap(0), d.st.NumVertices())
	w := d.sys.Worker()
	defer d.sys.Release(w)
	rewritten := 0
	for u := 0; u < d.st.NumVertices(); u++ {
		if err := ctx.Err(); err != nil {
			return rewritten, err
		}
		words := d.st.ChainWords(uint32(u))
		if words < minWords {
			continue
		}
		if d.sys.sp.Cap()-d.sys.sp.Used() < words+reserveWords {
			return rewritten, nil
		}
		did := false
		err := w.AtomicCtx(ctx, 2*words+8, func(tx Tx) error {
			// No Tx escapes here: CompactChain returns a bool, and the
			// plain overwrite is retry-safe — an aborted attempt's writes
			// are undone, so the rerun recomputes from the original chain.
			//tufast:ignore retryunsafe,txescape idempotent bool overwrite; no handle stored
			did = d.st.CompactChain(tx.t, uint32(u), keep)
			return nil
		})
		if err != nil {
			return rewritten, err
		}
		if did {
			rewritten++
		}
	}
	return rewritten, nil
}

// gcMinChainWords maps the effective-op count since the last GC pass
// to the smallest chain (in words) that pass will rebuild. Scaling by
// ops-per-vertex approximates how much fresh garbage the average chain
// accumulated while GC slept: 1 at quiescence (compact everything),
// growing ~3 words per op of average per-vertex pressure, capped so a
// burst can never push the threshold past every real chain and turn
// the pass into a permanent no-op.
func gcMinChainWords(opsSince uint64, numVertices int) int {
	if numVertices <= 0 {
		return 1
	}
	min := 1 + 3*int(opsSince/uint64(numVertices))
	if min > 256 {
		min = 256
	}
	return min
}

// AddEdge inserts edge (u, v) into g within tx, returning whether the
// edge was actually added (false for duplicates and self-loops). On
// undirected graphs both arcs are inserted atomically. The touched
// words belong to u and v, so conflict detection and lock subscription
// work exactly as for property writes.
//
// CONTRACT: a direct AddEdge/RemoveEdge transaction must not run
// concurrently with an ApplyStream batch. A direct mutation stamps
// its entry with the batch write stamp, so one racing the batch's
// end-of-stream stamp transition could commit an entry at an epoch
// that pinned views already read as complete — an edge appearing mid
// view lifetime — and append it after later-stamped entries for the
// same target, breaking the stamp monotonicity that "last entry with
// stamp ≤ e wins" relies on. The overlap panics when detected, but
// the check is best-effort (it cannot see a direct transaction that
// begins before the batch starts and commits after it ends): the
// contract, not the assertion, is the guarantee. Serving-path
// mutations belong in ApplyStream batches; ApplyStream's own OnEdge
// hooks must likewise mutate topology only through the stream's ops,
// never through AddEdge/RemoveEdge.
func (tx Tx) AddEdge(g *DynGraph, u, v uint32) bool {
	g.assertNoStream("AddEdge")
	return g.addEdge(tx, u, v)
}

// RemoveEdge deletes edge (u, v) from g within tx, returning whether
// the edge was actually removed (false when it was not live). On
// undirected graphs both arcs are removed atomically. The concurrency
// contract of AddEdge applies: direct RemoveEdge transactions must
// not overlap an ApplyStream batch.
func (tx Tx) RemoveEdge(g *DynGraph, u, v uint32) bool {
	g.assertNoStream("RemoveEdge")
	return g.removeEdge(tx, u, v)
}

// assertNoStream panics when a direct edge mutation is attempted while
// an ApplyStream batch is in flight — see the contract on Tx.AddEdge.
func (g *DynGraph) assertNoStream(op string) {
	if g.streaming.Load() {
		panic("tufast: Tx." + op + " during an ApplyStream batch: direct edge mutations " +
			"must not run concurrently with ApplyStream (see Tx.AddEdge); " +
			"route serving-path mutations through ApplyStream")
	}
}

// addEdge is the assertion-free mutation body shared by Tx.AddEdge and
// the stream applier (whose transactions are part of the batch and
// therefore correctly stamped by construction).
func (g *DynGraph) addEdge(tx Tx, u, v uint32) bool {
	changed := g.st.AddArc(tx.t, u, v)
	if g.st.Undirected() {
		if g.st.AddArc(tx.t, v, u) {
			changed = true
		}
	}
	return changed
}

// removeEdge is addEdge's delete twin.
func (g *DynGraph) removeEdge(tx Tx, u, v uint32) bool {
	changed := g.st.RemoveArc(tx.t, u, v)
	if g.st.Undirected() {
		if g.st.RemoveArc(tx.t, v, u) {
			changed = true
		}
	}
	return changed
}

// HasEdgeMut reports whether edge (u, v) is live in g within tx,
// observing the transaction's own uncommitted mutations.
func (tx Tx) HasEdgeMut(g *DynGraph, u, v uint32) bool {
	return g.st.HasArc(tx.t, u, v)
}

// DegreeMut returns v's live out-degree in g within tx, observing the
// transaction's own uncommitted mutations.
func (tx Tx) DegreeMut(g *DynGraph, v uint32) int {
	return g.st.Degree(tx.t, v)
}

// NeighborsMut returns v's live out-neighbors in g within tx, sorted,
// appended into buf[:0], observing the transaction's own uncommitted
// mutations. Reading the whole adjacency subscribes to v's overlay
// words, so concurrent mutations of v conflict — as they must.
func (tx Tx) NeighborsMut(g *DynGraph, v uint32, buf []uint32) []uint32 {
	return g.st.Neighbors(tx.t, v, buf)
}

// StreamOp is one timestamped edge mutation of a dynamic-graph stream
// (an alias of the internal stream type, so cmd-level tooling and the
// public API share files).
type StreamOp = dyngraph.Op

// StreamStats summarizes one ApplyStream run.
type StreamStats struct {
	// Applied counts operations whose transaction committed (= len(ops)
	// on success; on error, the ops that committed before the failure).
	Applied int
	// Inserted / Removed count operations that changed the graph.
	Inserted int
	// Removed counts operations that deleted a live edge.
	Removed int
	// NoOps counts duplicate inserts and deletes of absent edges.
	NoOps int
	// Epoch is the mutation epoch at which this batch's effect is
	// visible: for an effective batch, the exact value this batch's
	// epoch bump produced (any snapshot taken at Epoch or later
	// includes the batch); for a no-op batch, the epoch observed after
	// application. Unlike reading DynGraph.Epoch() after ApplyStream
	// returns, this cannot reflect a later concurrent batch's bump.
	Epoch uint64
}

// StreamOptions tunes ApplyStream.
type StreamOptions struct {
	// Window is how many consecutive ops are applied concurrently
	// between barriers (default 4096). Ops within a window commit in
	// arbitrary order; ordering across windows is preserved, so two
	// ops on the same edge only race if they share a window.
	Window int
	// OnEdge, when non-nil, runs inside each mutation transaction
	// after the mutation, with changed reporting whether the graph
	// actually changed. It observes the uncommitted mutation (reads
	// see the transaction's own writes) and may do transactional
	// fix-up work; emit(u) schedules u post-commit (see Emit). Like
	// any transaction body it must be retry-safe.
	OnEdge func(tx Tx, op StreamOp, changed bool, emit func(u uint32)) error
	// Emit, when non-nil, receives every vertex the transaction
	// emitted — after that transaction committed (never for aborted
	// attempts). Called from worker goroutines concurrently; typical
	// use pushes into a worklist an incremental algorithm drains.
	Emit func(u uint32)
}

// ApplyStream applies a timestamped edge stream to g through
// transactions: ops are sorted by Time (in place), then applied in
// windows; within a window mutations run concurrently across the
// System's threads, each as its own transaction routed by
// MutationHint. See StreamOptions for the hooks incremental
// algorithms attach.
func (d *DynGraph) ApplyStream(ops []StreamOp, opt StreamOptions) (StreamStats, error) {
	return d.ApplyStreamCtx(context.Background(), ops, opt)
}

// ApplyStreamCtx is ApplyStream with cancellation. Batches are
// serialized against each other (windows within a batch still run on
// all threads): each batch's entries are stamped with the epoch its
// bump will publish, so a batch must own its stamp exclusively for
// pinned views to stay stable.
func (d *DynGraph) ApplyStreamCtx(ctx context.Context, ops []StreamOp, opt StreamOptions) (StreamStats, error) {
	d.batchMu.Lock()
	defer d.batchMu.Unlock()
	// Deferred LIFO: the flag clears before batchMu releases, so a
	// direct mutation admitted after the batch can never trip the
	// assertion spuriously.
	d.streaming.Store(true)
	defer d.streaming.Store(false)
	cur := d.epoch.Load()
	// Entries this batch writes become visible exactly when the epoch
	// reaches cur+1 — i.e. when this batch commits its bump below.
	// Readers pinned at ≤ cur filter them out even mid-flight.
	d.st.SetWriteStamp(cur + 1)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Time < ops[j].Time })
	window := opt.Window
	if window <= 0 {
		window = 4096
	}
	var ins, rem, noop atomic.Uint64
	var applyErr error
	for lo := 0; lo < len(ops); lo += window {
		hi := lo + window
		if hi > len(ops) {
			hi = len(ops)
		}
		if err := d.applyWindow(ctx, ops[lo:hi], opt, &ins, &rem, &noop); err != nil {
			applyErr = err
			break
		}
	}
	// Accounting and the epoch bump run on the error path too: a window
	// that fails (cancellation, OnEdge error) after earlier windows —
	// or some of its own transactions — committed has still changed the
	// topology, and any committed change must invalidate epoch-keyed
	// consumers (result caches, lazy snapshots).
	var stats StreamStats
	stats.Inserted = int(ins.Load())
	stats.Removed = int(rem.Load())
	stats.NoOps = int(noop.Load())
	stats.Applied = stats.Inserted + stats.Removed + stats.NoOps
	d.inserted.Add(ins.Load())
	d.removed.Add(rem.Load())
	d.noops.Add(noop.Load())
	d.gcAppended.Add(ins.Load() + rem.Load())
	if ins.Load()+rem.Load() > 0 {
		// Advance the write stamp past the new epoch BEFORE publishing
		// it, so a direct Tx mutation racing with the bump can never
		// stamp an entry at an epoch that is already pinnable.
		d.st.SetWriteStamp(cur + 2)
		d.epoch.Store(cur + 1)
		stats.Epoch = cur + 1
	} else {
		stats.Epoch = cur
	}
	return stats, applyErr
}

// ComposeOnEdge chains OnEdge hooks: the returned hook runs each
// non-nil hook in order inside the mutation transaction, stopping at
// the first error. Nil (and all-nil) inputs collapse to nil, so
// composition never adds per-op overhead when nothing is attached.
// Multiple incremental computations share one stream this way: each
// hook sees the same op and the same emit callback, and every emitted
// vertex reaches every Emit consumer (see ComposeEmit) — spurious
// wakeups for computations that did not emit a vertex are benign
// because their drain bodies are no-ops on converged vertices.
func ComposeOnEdge(hooks ...func(tx Tx, op StreamOp, changed bool, emit func(u uint32)) error) func(Tx, StreamOp, bool, func(uint32)) error {
	live := hooks[:0:0]
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(tx Tx, op StreamOp, changed bool, emit func(u uint32)) error {
		for _, h := range live {
			if err := h(tx, op, changed, emit); err != nil {
				return err
			}
		}
		return nil
	}
}

// ComposeEmit chains Emit hooks: every post-commit emitted vertex is
// delivered to each non-nil hook in order. Nil inputs collapse as in
// ComposeOnEdge.
func ComposeEmit(hooks ...func(u uint32)) func(u uint32) {
	live := hooks[:0:0]
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(u uint32) {
		for _, h := range live {
			h(u)
		}
	}
}

// applyWindow runs one window of ops concurrently and barriers.
func (d *DynGraph) applyWindow(ctx context.Context, win []StreamOp, opt StreamOptions,
	ins, rem, noop *atomic.Uint64) error {
	var firstErr atomic.Value
	err := worklist.RangeCtx(ctx, len(win), d.sys.threads, 32, func(tid, lo, hi int) {
		pprof.SetGoroutineLabels(pprof.WithLabels(ctx, pprof.Labels(
			"tufast", "apply_stream", "worker", strconv.Itoa(tid))))
		w := d.sys.Worker()
		defer d.sys.Release(w)
		var pending []uint32
		emit := func(u uint32) { pending = append(pending, u) }
		for i := lo; i < hi; i++ {
			if firstErr.Load() != nil {
				return
			}
			op := win[i]
			var changed bool
			note := func(c bool) { changed = c }
			hint := d.MutationHint(op.U, op.V)
			err := w.AtomicCtx(ctx, hint, func(tx Tx) error {
				pending = pending[:0]
				if op.Del {
					note(d.removeEdge(tx, op.U, op.V))
				} else {
					note(d.addEdge(tx, op.U, op.V))
				}
				if opt.OnEdge != nil {
					return opt.OnEdge(tx, op, changed, emit)
				}
				return nil
			})
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			switch {
			case !changed:
				noop.Add(1)
			case op.Del:
				rem.Add(1)
			default:
				ins.Add(1)
			}
			if opt.Emit != nil {
				for _, u := range pending {
					opt.Emit(u)
				}
			}
		}
	})
	if err != nil {
		return err
	}
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// Sink is a Source that also accepts pushes; *Queue and *PQ satisfy it.
type Sink interface {
	Source
	Push(v uint32)
}

// ForEachQueuedEmit is ForEachQueued for algorithms that push
// follow-up work from inside transactions: fn receives an emit
// callback, and emitted vertices are pushed into q only after the
// transaction commits — never for attempts that abort and retry — so
// a wakeup always has a committed write behind it. hint overrides the
// per-vertex size hint (nil falls back to the base graph's degree,
// which dynamic-graph algorithms replace with live degree).
func (s *System) ForEachQueuedEmit(q Sink, hint func(v uint32) int,
	fn func(tx Tx, v uint32, emit func(u uint32)) error) error {
	return s.ForEachQueuedEmitCtx(context.Background(), q, hint, fn)
}

// ForEachQueuedEmitCtx is ForEachQueuedEmit with cancellation.
func (s *System) ForEachQueuedEmitCtx(ctx context.Context, q Sink, hint func(v uint32) int,
	fn func(tx Tx, v uint32, emit func(u uint32)) error) error {
	cancellable := ctx.Done() != nil
	var firstErr atomic.Value
	var idle atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < s.threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pprof.SetGoroutineLabels(pprof.WithLabels(ctx, pprof.Labels(
				"tufast", "foreach_queued_emit", "worker", strconv.Itoa(t))))
			w := s.Worker()
			defer s.Release(w)
			var pending []uint32
			emit := func(u uint32) { pending = append(pending, u) }
			// Quiesce invariant as in ForEachQueuedCtx: every exit path
			// leaves this worker's idle contribution counted, so the
			// rest can always reach the all-idle threshold.
			idleSpins := 0
			for {
				if firstErr.Load() != nil {
					idle.Add(1)
					return
				}
				if cancellable {
					if err := ctx.Err(); err != nil {
						firstErr.CompareAndSwap(nil, err)
						idle.Add(1)
						return
					}
				}
				v, ok := q.Pop()
				if ok {
					idleSpins = 0
				}
				if !ok {
					n := idle.Add(1)
					if int(n) >= s.threads && q.Len() == 0 {
						return
					}
					idleSpins++
					if idleSpins > 64 {
						time.Sleep(50 * time.Microsecond)
					} else {
						runtime.Gosched()
					}
					idle.Add(-1)
					continue
				}
				h := s.g.Degree(v)*2 + 2
				if hint != nil {
					h = hint(v)
				}
				err := w.AtomicCtx(ctx, h, func(tx Tx) error {
					pending = pending[:0]
					return fn(tx, v, emit)
				})
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					idle.Add(1)
					return
				}
				// Flush post-commit: these pushes are backed by committed
				// writes, so the stale-wakeup caveat of ForEachQueued's
				// in-transaction pushes does not apply.
				for _, u := range pending {
					q.Push(u)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return nil
}
