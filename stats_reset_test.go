package tufast_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"tufast"
)

// runCounterWorkload drives a System through all three modes so every
// snapshot counter family has a chance to move: neighborhood
// transactions (H for the power-law majority, O/L for the heavy tails),
// plus one user-stopped and one panicking transaction.
func runCounterWorkload(t *testing.T, sys *tufast.System, g *tufast.Graph) {
	t.Helper()
	arr := sys.NewVertexArray(0)
	err := sys.ForEachVertex(func(tx tufast.Tx, v uint32) error {
		sum := tx.Read(v, arr.Addr(v))
		for _, u := range g.Neighbors(v) {
			sum += tx.Read(u, arr.Addr(u))
			tx.Write(u, arr.Addr(u), sum)
		}
		tx.Write(v, arr.Addr(v), sum)
		return nil
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	sentinel := errors.New("stop")
	if err := sys.Atomic(0, func(tx tufast.Tx) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("user stop: %v", err)
	}
	var pe *tufast.TxPanicError
	if err := sys.Atomic(0, func(tx tufast.Tx) error { panic("boom") }); !errors.As(err, &pe) {
		t.Fatalf("panic stop: %v", err)
	}
}

// TestResetStatsZeroesEveryCounter pins the Snapshot/Reset invariant
// with reflection, so a counter added to Stats without a matching Reset
// (the bug this test was written against: HTM counters survived
// ResetStats) fails the test automatically instead of silently skewing
// post-warmup measurements.
func TestResetStatsZeroesEveryCounter(t *testing.T) {
	g := tufast.GeneratePowerLaw(4_000, 60_000, 2.1, 7)
	sys := tufast.NewSystem(g, tufast.Options{Threads: 8})
	runCounterWorkload(t, sys, g)

	pre := sys.StatsSnapshot()
	if pre.Commits == 0 || pre.Reads == 0 || pre.Writes == 0 {
		t.Fatalf("workload moved no counters: %+v", pre)
	}
	if pre.HTMStarts == 0 || pre.HTMCommits == 0 {
		t.Fatalf("workload started no emulated-HTM transactions: %+v", pre)
	}
	if pre.UserStops == 0 || pre.Panics == 0 {
		t.Fatalf("workload recorded no terminal stops: %+v", pre)
	}

	sys.ResetStats()
	post := sys.StatsSnapshot()

	// Every numeric field of Stats is a cumulative counter and must be
	// zero after ResetStats — except CurrentPeriod, a gauge: the
	// adaptive controller's workload estimate deliberately survives
	// warmup resets (see the ResetStats doc comment).
	gauges := map[string]bool{"CurrentPeriod": true}
	rv := reflect.ValueOf(post)
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if gauges[f.Name] {
			continue
		}
		assertZero(t, f.Name, rv.Field(i))
	}

	// The observability layer resets with the same call.
	ms := sys.MetricsSnapshot()
	if got := ms.Commits(); got != 0 {
		t.Errorf("MetricsSnapshot.Commits() = %d after ResetStats", got)
	}
	if got := ms.Aborts(); got != 0 {
		t.Errorf("MetricsSnapshot.Aborts() = %d after ResetStats", got)
	}
	for name, m := range ms.Modes {
		if m.Commits != 0 || len(m.Aborts) != 0 || len(m.Stops) != 0 {
			t.Errorf("mode %s not zeroed after ResetStats: %+v", name, m)
		}
	}
}

// assertZero recursively asserts that every numeric value reachable
// from v is zero.
func assertZero(t *testing.T, path string, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if v.Uint() != 0 {
			t.Errorf("%s = %d after ResetStats, want 0", path, v.Uint())
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if v.Int() != 0 {
			t.Errorf("%s = %d after ResetStats, want 0", path, v.Int())
		}
	case reflect.Float32, reflect.Float64:
		if v.Float() != 0 {
			t.Errorf("%s = %v after ResetStats, want 0", path, v.Float())
		}
	case reflect.Map:
		iter := v.MapRange()
		for iter.Next() {
			assertZero(t, fmt.Sprintf("%s[%v]", path, iter.Key()), iter.Value())
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			assertZero(t, fmt.Sprintf("%s[%d]", path, i), v.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			assertZero(t, path+"."+v.Type().Field(i).Name, v.Field(i))
		}
	}
}

// TestMetricsSnapshotBreakdown checks the new observability surface
// end to end: a real workload produces per-mode commits whose total
// matches the scheduler commit counter, and the adaptive period gauge
// is present.
func TestMetricsSnapshotBreakdown(t *testing.T) {
	g := tufast.GeneratePowerLaw(4_000, 60_000, 2.1, 11)
	sys := tufast.NewSystem(g, tufast.Options{Threads: 8})
	runCounterWorkload(t, sys, g)

	st := sys.StatsSnapshot()
	ms := sys.MetricsSnapshot()
	if got := ms.Commits(); got != st.Commits {
		t.Errorf("metrics commits = %d, stats commits = %d", got, st.Commits)
	}
	if _, ok := ms.Gauges["adaptive_period"]; !ok {
		t.Error("adaptive_period gauge missing")
	}
	var retries uint64
	for name, m := range ms.Modes {
		if m.Commits != 0 && m.Retries.Count() != m.Commits {
			t.Errorf("mode %s: retry histogram has %d entries for %d commits",
				name, m.Retries.Count(), m.Commits)
		}
		retries += m.Retries.Count()
	}
	if retries == 0 {
		t.Error("no retry histogram entries recorded")
	}
}

// TestTxEvents checks the opt-in lifecycle event rings through the
// public API.
func TestTxEvents(t *testing.T) {
	g := tufast.GeneratePowerLaw(500, 4_000, 2.1, 3)
	sys := tufast.NewSystem(g, tufast.Options{Threads: 2})
	if evs := sys.TxEvents(); len(evs) != 0 {
		t.Fatalf("events on by default: %d", len(evs))
	}
	sys.EnableTxEvents(true)
	if err := sys.Atomic(4, func(tx tufast.Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	evs := sys.TxEvents()
	if len(evs) < 2 {
		t.Fatalf("want at least begin+commit, got %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("events not ordered by sequence stamp")
		}
	}
}
