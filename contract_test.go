// contract_test.go — the transaction contract from the user's side of
// the fence: a panicking TxFunc must surface as *TxPanicError through
// every public entry point, stay extractable with errors.As even after
// user-side wrapping, and show up in the public stats. tufastcheck's
// analyzers enforce the static half of the contract; these tests pin
// the runtime half.
package tufast_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"tufast"
)

func TestTxPanicErrorExtractionThroughAtomic(t *testing.T) {
	g := tufast.GenerateUniform(32, 4, 1)
	s := tufast.NewSystem(g, tufast.Options{Threads: 2})
	arr := s.NewVertexArray(0)

	err := s.Atomic(4, func(tx tufast.Tx) error {
		tx.Write(3, arr.Addr(3), 1)
		panic("contract violation")
	})
	var pe *tufast.TxPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Atomic: err = %v (%T), want *TxPanicError", err, err)
	}
	if pe.Value != "contract violation" {
		t.Fatalf("panic value = %v, want contract violation", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("TxPanicError.Stack is empty")
	}

	// Callers wrap errors on the way up; extraction must survive it.
	wrapped := fmt.Errorf("analytics pass failed: %w", err)
	pe = nil
	if !errors.As(wrapped, &pe) || pe.Value != "contract violation" {
		t.Fatalf("errors.As through wrapping: got %v from %v", pe, wrapped)
	}

	st := s.StatsSnapshot()
	if st.Panics != 1 {
		t.Fatalf("Stats.Panics = %d, want 1", st.Panics)
	}
	if st.UserStops < st.Panics {
		t.Fatalf("Stats.UserStops = %d < Panics = %d; panics must count as user stops",
			st.UserStops, st.Panics)
	}
}

func TestTxPanicErrorExtractionThroughForEachVertexCtx(t *testing.T) {
	g := tufast.GenerateUniform(256, 4, 3)
	s := tufast.NewSystem(g, tufast.Options{Threads: 4})
	arr := s.NewVertexArray(0)

	err := s.ForEachVertexCtx(context.Background(), func(tx tufast.Tx, v uint32) error {
		if v == 17 {
			panic(fmt.Sprintf("vertex %d", v))
		}
		tx.Write(v, arr.Addr(v), uint64(v)+1)
		return nil
	})
	if err == nil {
		t.Fatal("ForEachVertexCtx: panicking TxFunc returned nil error")
	}
	var pe *tufast.TxPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("ForEachVertexCtx: err = %v (%T), want *TxPanicError", err, err)
	}
	if pe.Value != "vertex 17" {
		t.Fatalf("panic value = %v, want vertex 17", pe.Value)
	}

	// The panic is terminal for its transaction: the panicking vertex's
	// write rolled back, while vertices that committed kept theirs.
	if got := arr.Get(17); got != 0 {
		t.Fatalf("vertex 17 = %d, want 0 (rolled back)", got)
	}

	st := s.StatsSnapshot()
	if st.Panics != 1 {
		t.Fatalf("Stats.Panics = %d, want 1", st.Panics)
	}
	if st.UserStops < st.Panics {
		t.Fatalf("Stats.UserStops = %d < Panics = %d", st.UserStops, st.Panics)
	}
}

// TestStatsPanicsAccumulate pins that Panics counts every terminal
// panic, is monotone across entry points, and resets with ResetStats.
func TestStatsPanicsAccumulate(t *testing.T) {
	g := tufast.GenerateUniform(32, 4, 1)
	s := tufast.NewSystem(g, tufast.Options{Threads: 2})

	for i := 0; i < 3; i++ {
		err := s.Atomic(2, func(tx tufast.Tx) error { panic(i) })
		var pe *tufast.TxPanicError
		if !errors.As(err, &pe) || pe.Value != i {
			t.Fatalf("panic %d: err = %v", i, err)
		}
	}
	if st := s.StatsSnapshot(); st.Panics != 3 {
		t.Fatalf("Stats.Panics = %d, want 3", st.Panics)
	}

	s.ResetStats()
	if st := s.StatsSnapshot(); st.Panics != 0 || st.UserStops != 0 {
		t.Fatalf("after ResetStats: Panics=%d UserStops=%d, want 0,0", st.Panics, st.UserStops)
	}
}
