// dyngraph_api_test.go — the dynamic-graph subsystem from the user's
// side of the fence: transactional mutation semantics through Tx,
// the randomized streaming oracle (concurrent mutations → compact ==
// replay-built CSR), degree-routed mode attribution of mutation
// transactions, and the post-commit emit driver.
package tufast_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tufast"
	"tufast/internal/dyngraph"
	"tufast/internal/graph"
)

func newDynFixture(t *testing.T, g *tufast.Graph, mutations int, opt tufast.Options) (*tufast.System, *tufast.DynGraph) {
	t.Helper()
	if opt.SpaceWords <= 0 {
		opt.SpaceWords = tufast.DynSpaceWords(g, mutations)
	}
	s := tufast.NewSystem(g, opt)
	return s, tufast.NewDynGraph(s)
}

func TestTxMutationSemantics(t *testing.T) {
	g, err := tufast.BuildGraph(8, []tufast.EdgePair{{U: 0, V: 1}, {U: 2, V: 3}}, true)
	if err != nil {
		t.Fatal(err)
	}
	s, d := newDynFixture(t, g, 64, tufast.Options{Threads: 2})

	mutate := func(f func(tx tufast.Tx) bool) bool {
		var got bool
		note := func(b bool) { got = b }
		if err := s.Atomic(16, func(tx tufast.Tx) error {
			note(f(tx))
			return nil
		}); err != nil {
			t.Fatalf("Atomic: %v", err)
		}
		return got
	}

	if mutate(func(tx tufast.Tx) bool { return tx.AddEdge(d, 0, 1) }) {
		t.Error("AddEdge of existing edge should report false")
	}
	if !mutate(func(tx tufast.Tx) bool { return tx.AddEdge(d, 1, 4) }) {
		t.Error("AddEdge of new edge should report true")
	}
	if !mutate(func(tx tufast.Tx) bool { return tx.RemoveEdge(d, 2, 3) }) {
		t.Error("RemoveEdge of live edge should report true")
	}
	if mutate(func(tx tufast.Tx) bool { return tx.RemoveEdge(d, 2, 3) }) {
		t.Error("RemoveEdge twice should report false")
	}
	if mutate(func(tx tufast.Tx) bool { return tx.AddEdge(d, 5, 5) }) {
		t.Error("self-loop AddEdge should report false")
	}
	// Read-own-writes: a transaction observes its uncommitted mutation.
	sawOwnWrite := mutate(func(tx tufast.Tx) bool {
		if tx.HasEdgeMut(d, 6, 7) {
			return false
		}
		tx.AddEdge(d, 6, 7)
		return tx.HasEdgeMut(d, 6, 7) && tx.DegreeMut(d, 6) == 1
	})
	if !sawOwnWrite {
		t.Error("transaction does not see its own AddEdge")
	}
	// Undirected: both arcs visible after commit.
	if !d.HasEdgeNow(7, 6) || !d.HasEdgeNow(6, 7) {
		t.Error("undirected AddEdge should create both arcs")
	}
	if got := d.NeighborsNow(1, nil); !reflect.DeepEqual(got, []uint32{0, 4}) {
		t.Errorf("NeighborsNow(1) = %v, want [0 4]", got)
	}
	if d.LiveDegree(2) != 0 {
		t.Errorf("LiveDegree(2) = %d after removal, want 0", d.LiveDegree(2))
	}
}

// skewedVertex biases ~5% of endpoints onto eight hub ids, giving the
// degree skew the H/O/L router needs to spread modes.
func skewedVertex(rng *rand.Rand, n int) uint32 {
	if rng.Intn(20) == 0 {
		return uint32(rng.Intn(8))
	}
	return uint32(rng.Intn(n))
}

// makeOracleStream builds an undirected base graph plus nOps mutations
// over pairwise-distinct edges, so any concurrent application order
// yields the same final graph and ReplayEdges is an exact oracle.
func makeOracleStream(n, baseEdges, nOps int, seed int64) (*tufast.Graph, *dyngraph.Stream) {
	rng := rand.New(rand.NewSource(seed))
	key := func(u, v uint32) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(v)
	}
	baseSet := map[uint64]tufast.EdgePair{}
	for len(baseSet) < baseEdges {
		u, v := skewedVertex(rng, n), skewedVertex(rng, n)
		if u == v {
			continue
		}
		baseSet[key(u, v)] = tufast.EdgePair{U: u, V: v}
	}
	var edges []tufast.EdgePair
	for _, e := range baseSet {
		edges = append(edges, e)
	}
	g, err := tufast.BuildGraph(n, edges, true)
	if err != nil {
		panic(err)
	}
	st := &dyngraph.Stream{N: n, Undirected: true}
	for u := uint32(0); int(u) < n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				st.Base = append(st.Base, graph.Edge{U: u, V: v})
			}
		}
	}
	// Ops over distinct pairs (each pair touched at most once), mixing
	// live-edge deletes, fresh inserts, and no-ops of both kinds.
	used := map[uint64]bool{}
	for len(st.Ops) < nOps {
		u, v := skewedVertex(rng, n), skewedVertex(rng, n)
		if u == v {
			continue
		}
		k := key(u, v)
		if used[k] {
			continue
		}
		used[k] = true
		_, inBase := baseSet[k]
		var del bool
		if inBase {
			del = rng.Intn(4) != 0 // mostly deletes of live edges, some no-op adds
		} else {
			del = rng.Intn(5) == 0 // mostly fresh inserts, some no-op deletes
		}
		st.Ops = append(st.Ops, tufast.StreamOp{
			Time: uint64(len(st.Ops) + 1), U: u, V: v, Del: del,
		})
	}
	return g, st
}

// TestStreamingOracle is the acceptance test: ≥100k randomized
// inserts/deletes applied through transactions under ≥8 workers, then
// the compacted CSR must equal the CSR built from the replayed edge
// list, and the mutation commits must be attributed across at least H
// and L modes (degree routing engaged).
func TestStreamingOracle(t *testing.T) {
	const (
		n     = 4000
		baseE = 30_000
		nOps  = 100_000
	)
	g, st := makeOracleStream(n, baseE, nOps, 99)
	s, d := newDynFixture(t, g, len(st.Ops), tufast.Options{
		Threads: 8,
		// Scaled-down routing thresholds so this graph's degree skew
		// spreads mutations across H (leaves), O (middle) and L (hubs).
		HMaxHint: 64,
		OMaxHint: 256,
	})
	s.ResetStats()

	stats, err := d.ApplyStream(st.Ops, tufast.StreamOptions{Window: 4096})
	if err != nil {
		t.Fatalf("ApplyStream: %v", err)
	}
	if stats.Applied != len(st.Ops) {
		t.Fatalf("Applied = %d, want %d", stats.Applied, len(st.Ops))
	}
	if stats.Inserted == 0 || stats.Removed == 0 {
		t.Fatalf("stream had no effect: %+v", stats)
	}
	ins, rem, noops := d.MutationStats()
	if int(ins) != stats.Inserted || int(rem) != stats.Removed || int(noops) != stats.NoOps {
		t.Errorf("MutationStats (%d,%d,%d) != StreamStats %+v", ins, rem, noops, stats)
	}

	// Oracle: compact == replay-built.
	var replay []tufast.EdgePair
	for _, e := range st.ReplayEdges() {
		replay = append(replay, tufast.EdgePair{U: e.U, V: e.V})
	}
	want, err := tufast.BuildGraph(n, replay, true)
	if err != nil {
		t.Fatalf("replay build: %v", err)
	}
	got, err := d.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("compacted edges = %d, replay has %d", got.NumEdges(), want.NumEdges())
	}
	for v := uint32(0); int(v) < n; v++ {
		gn, wn := got.Neighbors(v), want.Neighbors(v)
		if len(gn) == 0 && len(wn) == 0 {
			continue
		}
		if !reflect.DeepEqual(gn, wn) {
			t.Fatalf("Neighbors(%d): compact %v, replay %v", v, gn, wn)
		}
		if ld := d.LiveDegree(v); ld != len(wn) {
			t.Fatalf("LiveDegree(%d) = %d, replay degree %d", v, ld, len(wn))
		}
	}
	if !got.Undirected() {
		t.Error("Compact dropped the Undirected flag")
	}

	// Degree routing engaged: mutation commits attributed to H and L.
	snap := s.MetricsSnapshot()
	h, l := snap.Modes["H"].Commits, snap.Modes["L"].Commits
	if h == 0 || l == 0 {
		t.Errorf("mode mix: H=%d L=%d — want both nonzero (modes: %+v)", h, l, snap.Modes)
	}
}

func TestForEachQueuedEmitFlushesPostCommit(t *testing.T) {
	g := tufast.GenerateUniform(64, 4, 3)
	s := tufast.NewSystem(g, tufast.Options{Threads: 4})
	val := s.NewVertexArray(0)
	q := s.NewQueue()
	q.Push(0)
	// Each unmarked vertex v < 32 marks itself and emits v+1: the
	// post-commit chain must visit vertices 0..32 exactly, and never
	// reach past the last emitter.
	err := s.ForEachQueuedEmit(q, func(v uint32) int { return 4 },
		func(tx tufast.Tx, v uint32, emit func(u uint32)) error {
			if tx.Read(v, val.Addr(v)) != 0 {
				return nil
			}
			tx.Write(v, val.Addr(v), 1)
			if v < 32 {
				emit(v + 1)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("ForEachQueuedEmit: %v", err)
	}
	for v := uint32(0); v < 64; v++ {
		want := uint64(0)
		if v <= 32 {
			want = 1
		}
		if got := val.Get(v); got != want {
			t.Fatalf("val[%d] = %d, want %d", v, got, want)
		}
	}
}

// TestMutationEpoch pins the epoch contract the serving layer's result
// cache depends on: ApplyStream bumps the epoch exactly when a batch
// changed topology, and a pure no-op batch leaves it alone.
func TestMutationEpoch(t *testing.T) {
	g, err := tufast.BuildGraph(8, []tufast.EdgePair{{U: 0, V: 1}}, true)
	if err != nil {
		t.Fatal(err)
	}
	_, d := newDynFixture(t, g, 64, tufast.Options{Threads: 2})
	if d.Epoch() != 0 {
		t.Fatalf("fresh graph epoch = %d, want 0", d.Epoch())
	}

	// Effective batch: one fresh insert.
	if _, err := d.ApplyStream([]tufast.StreamOp{{Time: 1, U: 2, V: 3}}, tufast.StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch after effective batch = %d, want 1", d.Epoch())
	}

	// Pure no-op batch: re-insert a live edge, delete a missing one.
	if _, err := d.ApplyStream([]tufast.StreamOp{
		{Time: 2, U: 0, V: 1},
		{Time: 3, U: 4, V: 5, Del: true},
	}, tufast.StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch after no-op batch = %d, want still 1", d.Epoch())
	}

	// A delete of a live edge is effective again.
	if _, err := d.ApplyStream([]tufast.StreamOp{{Time: 4, U: 0, V: 1, Del: true}}, tufast.StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 2 {
		t.Fatalf("epoch after effective delete = %d, want 2", d.Epoch())
	}
}

// TestPartialBatchBumpsEpoch pins the error-path half of the epoch
// contract: a batch that fails after some windows committed (client
// disconnect mid-stream, OnEdge error) has still mutated the topology,
// so the epoch must move — otherwise epoch-keyed consumers (the serving
// layer's result cache, lazy snapshots) would keep treating
// pre-mutation state as current. A failing batch that committed
// nothing must still leave the epoch alone.
func TestPartialBatchBumpsEpoch(t *testing.T) {
	g, err := tufast.BuildGraph(8, []tufast.EdgePair{{U: 0, V: 1}}, true)
	if err != nil {
		t.Fatal(err)
	}
	_, d := newDynFixture(t, g, 64, tufast.Options{Threads: 2})

	boom := errors.New("boom")
	failAt := func(at uint64) func(tufast.Tx, tufast.StreamOp, bool, func(uint32)) error {
		return func(_ tufast.Tx, op tufast.StreamOp, _ bool, _ func(uint32)) error {
			if op.Time >= at {
				return boom
			}
			return nil
		}
	}

	// Window 1 commits a fresh insert; window 2's transaction aborts.
	stats, err := d.ApplyStream([]tufast.StreamOp{
		{Time: 1, U: 2, V: 3},
		{Time: 2, U: 4, V: 5},
	}, tufast.StreamOptions{Window: 1, OnEdge: failAt(2)})
	if !errors.Is(err, boom) {
		t.Fatalf("ApplyStream err = %v, want %v", err, boom)
	}
	if stats.Applied != 1 || stats.Inserted != 1 {
		t.Fatalf("partial stats = %+v, want Applied=1 Inserted=1", stats)
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch after partially-applied batch = %d, want 1", d.Epoch())
	}
	if ins, _, _ := d.MutationStats(); ins != 1 {
		t.Fatalf("MutationStats inserted = %d, want 1", ins)
	}

	// A batch whose every transaction aborted changed nothing: no bump.
	stats, err = d.ApplyStream([]tufast.StreamOp{{Time: 1, U: 6, V: 7}},
		tufast.StreamOptions{Window: 1, OnEdge: failAt(0)})
	if !errors.Is(err, boom) {
		t.Fatalf("ApplyStream err = %v, want %v", err, boom)
	}
	if stats.Applied != 0 {
		t.Fatalf("aborted-batch stats = %+v, want Applied=0", stats)
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch after fully-aborted batch = %d, want still 1", d.Epoch())
	}
}

// TestStreamStatsEpoch pins the per-batch epoch capture: an effective
// batch's StreamStats.Epoch is the exact value its own bump produced —
// even when other batches commit concurrently — and a no-op batch
// reports the unchanged current epoch. Re-reading Epoch() after the
// batch returns would instead leak a later concurrent batch's value.
func TestStreamStatsEpoch(t *testing.T) {
	g, err := tufast.BuildGraph(64, []tufast.EdgePair{{U: 0, V: 1}}, true)
	if err != nil {
		t.Fatal(err)
	}
	_, d := newDynFixture(t, g, 4096, tufast.Options{Threads: 4})

	// Sequential: each effective batch reports its own bump.
	stats, err := d.ApplyStream([]tufast.StreamOp{{Time: 1, U: 2, V: 3}}, tufast.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 1 || d.Epoch() != 1 {
		t.Fatalf("effective batch: stats.Epoch=%d Epoch()=%d, want 1,1", stats.Epoch, d.Epoch())
	}
	// No-op batch: current epoch, no bump.
	stats, err = d.ApplyStream([]tufast.StreamOp{{Time: 2, U: 0, V: 1}}, tufast.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 1 || d.Epoch() != 1 {
		t.Fatalf("no-op batch: stats.Epoch=%d Epoch()=%d, want 1,1", stats.Epoch, d.Epoch())
	}

	// Concurrent effective batches on disjoint vertices: every batch
	// must observe a distinct epoch (its own bump), covering 2..K+1.
	const k = 8
	epochs := make([]uint64, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u := uint32(8 + 2*i)
			st, err := d.ApplyStream([]tufast.StreamOp{{Time: 1, U: u, V: u + 1}}, tufast.StreamOptions{})
			if err != nil {
				t.Errorf("batch %d: %v", i, err)
				return
			}
			epochs[i] = st.Epoch
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for i, e := range epochs {
		if e < 2 || e > k+1 {
			t.Errorf("batch %d: epoch %d outside [2,%d]", i, e, k+1)
		}
		if seen[e] {
			t.Errorf("epoch %d reported by two concurrent batches", e)
		}
		seen[e] = true
	}
	if d.Epoch() != k+1 {
		t.Fatalf("final epoch = %d, want %d", d.Epoch(), k+1)
	}
}

// TestComposeHooks pins the hook-composition helpers the serving layer
// uses to fan mutation-stream callbacks out to standing queries: nil
// hooks are dropped, order is preserved, and a failing OnEdge hook
// stops the chain.
func TestComposeHooks(t *testing.T) {
	if tufast.ComposeOnEdge() != nil || tufast.ComposeOnEdge(nil, nil) != nil {
		t.Error("ComposeOnEdge of no live hooks should be nil (stream fast path)")
	}
	if tufast.ComposeEmit() != nil || tufast.ComposeEmit(nil) != nil {
		t.Error("ComposeEmit of no live hooks should be nil")
	}

	var order []string
	mk := func(name string, fail error) func(tufast.Tx, tufast.StreamOp, bool, func(uint32)) error {
		return func(_ tufast.Tx, _ tufast.StreamOp, _ bool, _ func(uint32)) error {
			order = append(order, name)
			return fail
		}
	}
	h := tufast.ComposeOnEdge(nil, mk("a", nil), nil, mk("b", nil))
	if h == nil {
		t.Fatal("composed OnEdge is nil")
	}
	if err := h(tufast.Tx{}, tufast.StreamOp{}, true, nil); err != nil {
		t.Fatalf("composed OnEdge: %v", err)
	}
	if !reflect.DeepEqual(order, []string{"a", "b"}) {
		t.Fatalf("OnEdge order = %v, want [a b]", order)
	}

	boom := errors.New("boom")
	order = nil
	h = tufast.ComposeOnEdge(mk("a", boom), mk("b", nil))
	if err := h(tufast.Tx{}, tufast.StreamOp{}, true, nil); !errors.Is(err, boom) {
		t.Fatalf("composed OnEdge err = %v, want %v", err, boom)
	}
	if !reflect.DeepEqual(order, []string{"a"}) {
		t.Fatalf("failing hook did not stop the chain: %v", order)
	}

	var got []uint32
	e := tufast.ComposeEmit(nil, func(u uint32) { got = append(got, u) }, func(u uint32) { got = append(got, u+100) })
	e(7)
	if !reflect.DeepEqual(got, []uint32{7, 107}) {
		t.Fatalf("composed Emit = %v, want [7 107]", got)
	}

	// Composed hooks ride a real stream: both hooks observe every
	// effective op, emits reach both sinks.
	g, err := tufast.BuildGraph(8, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	_, d := newDynFixture(t, g, 64, tufast.Options{Threads: 2})
	var aOps, bOps int32
	onEdge := tufast.ComposeOnEdge(
		func(_ tufast.Tx, _ tufast.StreamOp, changed bool, emit func(uint32)) error {
			if changed {
				atomic.AddInt32(&aOps, 1)
				emit(1)
			}
			return nil
		},
		func(_ tufast.Tx, _ tufast.StreamOp, changed bool, _ func(uint32)) error {
			if changed {
				atomic.AddInt32(&bOps, 1)
			}
			return nil
		},
	)
	var emitted int32
	emit := tufast.ComposeEmit(func(_ uint32) { atomic.AddInt32(&emitted, 1) },
		func(_ uint32) { atomic.AddInt32(&emitted, 1) })
	stats, err := d.ApplyStream([]tufast.StreamOp{
		{Time: 1, U: 0, V: 1}, {Time: 2, U: 2, V: 3},
	}, tufast.StreamOptions{OnEdge: onEdge, Emit: emit})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 2 {
		t.Fatalf("stats = %+v, want Inserted=2", stats)
	}
	if aOps != 2 || bOps != 2 {
		t.Fatalf("hook counts a=%d b=%d, want 2,2", aOps, bOps)
	}
	if emitted != 4 { // 2 emits × 2 composed sinks
		t.Fatalf("emitted = %d, want 4", emitted)
	}
}

// TestDirectMutationDuringStreamRejected pins the Tx.AddEdge contract:
// a direct edge mutation attempted while an ApplyStream batch is in
// flight must panic instead of silently stamping an entry under the
// batch's epoch — such an entry could commit after the batch publishes
// its epoch, making a pinned view watch an edge appear mid-lifetime
// and breaking per-target stamp monotonicity.
func TestDirectMutationDuringStreamRejected(t *testing.T) {
	g, err := tufast.BuildGraph(16, []tufast.EdgePair{{U: 0, V: 1}}, true)
	if err != nil {
		t.Fatal(err)
	}
	s, d := newDynFixture(t, g, 256, tufast.Options{Threads: 2})

	entered := make(chan struct{})
	release := make(chan struct{})
	var gate sync.Once
	streamDone := make(chan error, 1)
	go func() {
		_, err := d.ApplyStream([]tufast.StreamOp{{Time: 1, U: 2, V: 3}}, tufast.StreamOptions{
			OnEdge: func(tufast.Tx, tufast.StreamOp, bool, func(uint32)) error {
				// Retry-safe: only the first attempt parks the batch.
				gate.Do(func() { close(entered); <-release })
				return nil
			},
		})
		streamDone <- err
	}()
	<-entered

	// The panic fires before any chain word is touched; recovering
	// inside the body turns it into a clean transactional abort.
	var msg string
	err = s.Atomic(16, func(tx tufast.Tx) (err error) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
				err = errors.New(msg)
			}
		}()
		tx.AddEdge(d, 4, 5)
		return nil
	})
	if err == nil || !strings.Contains(msg, "ApplyStream") {
		t.Errorf("direct AddEdge during a batch: err=%v msg=%q, want an ApplyStream contract panic", err, msg)
	}

	close(release)
	if err := <-streamDone; err != nil {
		t.Fatalf("ApplyStream: %v", err)
	}
	// Once the batch has drained, direct mutations are legal again.
	var added bool
	if err := s.Atomic(16, func(tx tufast.Tx) error {
		added = tx.AddEdge(d, 4, 5)
		return nil
	}); err != nil {
		t.Fatalf("direct AddEdge after the batch: %v", err)
	}
	if !added || !d.HasEdgeNow(4, 5) {
		t.Error("direct AddEdge after the batch did not take effect")
	}
}
